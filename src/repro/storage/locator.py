"""A record store addressed by record id, clustered by a sort key.

DM's connectivity encoding lets query processing jump straight to the
node records it needs instead of walking the tree from the root; on
disk that means: records are *clustered* (sorted by z-order of their
position so spatial neighbours share pages) but *addressed* by id.
:class:`LocatorStore` models exactly that access path and charges the
buffer pool for every page the requested id set touches.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StorageError
from repro.storage.pages import PageManager
from repro.storage.records import pack_page, paginate, unpack_page
from repro.storage.stats import PAGE_CLASS_OTHER


class LocatorStore:
    """Immutable id-addressed record store.

    Parameters
    ----------
    items:
        Iterable of ``(cluster_key, record_id, blob)``; blobs are laid
        out on pages in cluster-key order.
    pages:
        Shared :class:`PageManager`.
    page_class:
        Structure label under which this store's pages are allocated,
        for per-structure read attribution (e.g. "dmtm", "msdn").
    """

    def __init__(self, items, pages: PageManager, page_class: str = PAGE_CLASS_OTHER):
        self._pages = pages
        ordered = sorted(items, key=lambda t: t[0])
        blobs = [blob for _key, _rid, blob in ordered]
        self._locators: dict[object, tuple[int, int]] = {}
        self._page_ids: list[int] = []
        cursor = 0
        for batch in paginate(blobs, pages.page_size):
            page_id = pages.allocate(
                pack_page(batch, pages.page_size), page_class=page_class
            )
            self._page_ids.append(page_id)
            for slot in range(len(batch)):
                rid = ordered[cursor][1]
                if rid in self._locators:
                    raise StorageError(f"duplicate record id {rid!r}")
                self._locators[rid] = (page_id, slot)
                cursor += 1
        self._count = cursor

    def __len__(self) -> int:
        return self._count

    @property
    def num_pages(self) -> int:
        return len(self._page_ids)

    def touch(self, record_ids) -> int:
        """Read (through the buffer pool) every page holding one of
        the given record ids; returns the number of distinct pages."""
        needed = {self._locator(rid)[0] for rid in record_ids}
        for page_id in sorted(needed):
            self._pages.read(page_id)
        return len(needed)

    def page_of(self, record_id) -> int:
        """Page id holding a record (for callers that pre-resolve the
        id → page mapping once and then touch by page array)."""
        return self._locator(record_id)[0]

    def touch_pages(self, page_ids) -> int:
        """Array twin of :meth:`touch` for pre-resolved page ids.

        ``page_ids`` may contain duplicates; the distinct pages are
        read in ascending order — the same reads, in the same order,
        that :meth:`touch` issues for the records living on them.
        """
        needed = np.unique(np.asarray(page_ids))
        for page_id in needed:
            self._pages.read(int(page_id))
        return int(needed.size)

    def fetch(self, record_id) -> bytes:
        """Read and return one record's blob."""
        page_id, slot = self._locator(record_id)
        return unpack_page(self._pages.read(page_id))[slot]

    def _locator(self, record_id) -> tuple[int, int]:
        loc = self._locators.get(record_id)
        if loc is None:
            raise StorageError(f"unknown record id {record_id!r}")
        return loc
