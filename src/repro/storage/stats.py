"""I/O statistics and the simulated disk cost model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IOStatistics:
    """Counters maintained by a :class:`repro.storage.PageManager`.

    ``physical_reads`` is the paper's "pages accessed": logical page
    requests that missed the buffer pool and had to be fetched.
    """

    logical_reads: int = 0
    physical_reads: int = 0
    pages_written: int = 0

    def reset(self) -> None:
        self.logical_reads = 0
        self.physical_reads = 0
        self.pages_written = 0

    def snapshot(self) -> "IOStatistics":
        return IOStatistics(
            self.logical_reads, self.physical_reads, self.pages_written
        )

    def delta_since(self, earlier: "IOStatistics") -> "IOStatistics":
        return IOStatistics(
            self.logical_reads - earlier.logical_reads,
            self.physical_reads - earlier.physical_reads,
            self.pages_written - earlier.pages_written,
        )


@dataclass(frozen=True)
class DiskModel:
    """Converts page counts into simulated I/O seconds.

    The default (0.5 ms per page) models the amortized cost of the
    multiblock sequential reads a *clustered* B+-tree range scan
    issues on a 2006-era disk (a random single-page seek would be
    ~8 ms, but both DMTM and MSDN fetches are contiguous key-range /
    region scans over z-order-clustered pages).  Results are reported
    both as raw page counts (hardware-independent, Figs 9-11 right
    column) and as simulated seconds folded into total time (Figs
    10-11 left column); pick your own constant via
    ``DiskModel(seconds_per_page=...)`` to shift regimes.
    """

    seconds_per_page: float = 0.0005

    def io_seconds(self, stats: IOStatistics) -> float:
        return stats.physical_reads * self.seconds_per_page
