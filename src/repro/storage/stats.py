"""I/O statistics and the simulated disk cost model."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

#: Well-known page classes; free-form strings are also accepted.
PAGE_CLASS_DMTM = "dmtm"
PAGE_CLASS_MSDN = "msdn"
PAGE_CLASS_OBJECTS = "objects"
PAGE_CLASS_INDEX = "index"
PAGE_CLASS_OTHER = "other"


@dataclass
class IOStatistics:
    """Counters maintained by a :class:`repro.storage.PageManager`.

    ``physical_reads`` is the paper's "pages accessed": logical page
    requests that missed the buffer pool and had to be fetched.  The
    ``*_by_class`` dicts attribute the same counts to the structure
    the page belongs to (dmtm / msdn / objects / index), so a query's
    page bill can be split per structure.
    """

    logical_reads: int = 0
    physical_reads: int = 0
    pages_written: int = 0
    logical_by_class: dict = field(default_factory=dict)
    physical_by_class: dict = field(default_factory=dict)

    def record_write(self) -> None:
        """Account one page allocation."""
        self.pages_written += 1

    def record_read(self, page_class: str, physical: bool) -> None:
        """Account one logical read (and its miss, when physical)."""
        self.logical_reads += 1
        self.logical_by_class[page_class] = (
            self.logical_by_class.get(page_class, 0) + 1
        )
        if physical:
            self.physical_reads += 1
            self.physical_by_class[page_class] = (
                self.physical_by_class.get(page_class, 0) + 1
            )

    @property
    def buffer_hit_rate(self) -> float:
        """Fraction of logical reads served from the buffer pool."""
        if self.logical_reads == 0:
            return 0.0
        return 1.0 - self.physical_reads / self.logical_reads

    def reset(self) -> None:
        self.logical_reads = 0
        self.physical_reads = 0
        self.pages_written = 0
        self.logical_by_class = {}
        self.physical_by_class = {}

    def snapshot(self) -> "IOStatistics":
        return IOStatistics(
            logical_reads=self.logical_reads,
            physical_reads=self.physical_reads,
            pages_written=self.pages_written,
            logical_by_class=dict(self.logical_by_class),
            physical_by_class=dict(self.physical_by_class),
        )

    def delta_since(self, earlier: "IOStatistics") -> "IOStatistics":
        def diff(now: dict, then: dict) -> dict:
            out = {}
            for cls, count in now.items():
                d = count - then.get(cls, 0)
                if d:
                    out[cls] = d
            return out

        return IOStatistics(
            logical_reads=self.logical_reads - earlier.logical_reads,
            physical_reads=self.physical_reads - earlier.physical_reads,
            pages_written=self.pages_written - earlier.pages_written,
            logical_by_class=diff(
                self.logical_by_class, earlier.logical_by_class
            ),
            physical_by_class=diff(
                self.physical_by_class, earlier.physical_by_class
            ),
        )


class ThreadLocalIOStatistics:
    """An :class:`IOStatistics` facade keeping one instance per thread.

    Concurrent queries sharing one :class:`~repro.storage.pages.PageManager`
    would trample each other's ``snapshot()``/``delta_since()`` windows
    on a single counter set.  This router gives every thread its own
    private ``IOStatistics``: ``record_read``/``record_write``/
    ``snapshot``/``delta_since`` all act on the calling thread's
    instance, so a worker's per-query delta only ever contains its own
    page traffic.  :meth:`aggregate` sums every thread's counters into
    one global view — by construction the sum of all per-query deltas
    (plus whatever ran outside a delta window) equals the aggregate,
    the invariant the batch stress tests assert.
    """

    def __init__(self):
        self._local = threading.local()
        self._lock = threading.Lock()
        self._parts: list[IOStatistics] = []

    def _stats(self) -> IOStatistics:
        stats = getattr(self._local, "stats", None)
        if stats is None:
            stats = self._local.stats = IOStatistics()
            with self._lock:
                self._parts.append(stats)
        return stats

    # -- accounting (thread-local) -------------------------------------

    def record_read(self, page_class: str, physical: bool) -> None:
        self._stats().record_read(page_class, physical)

    def record_write(self) -> None:
        self._stats().record_write()

    def snapshot(self) -> IOStatistics:
        """Snapshot of the *calling thread's* counters."""
        return self._stats().snapshot()

    def delta_since(self, earlier: IOStatistics) -> IOStatistics:
        """Delta of the *calling thread's* counters."""
        return self._stats().delta_since(earlier)

    # -- global view ----------------------------------------------------

    def aggregate(self) -> IOStatistics:
        """Sum of every thread's counters (one merged IOStatistics)."""
        with self._lock:
            parts = list(self._parts)
        total = IOStatistics()
        for part in parts:
            total.logical_reads += part.logical_reads
            total.physical_reads += part.physical_reads
            total.pages_written += part.pages_written
            for cls, count in part.logical_by_class.items():
                total.logical_by_class[cls] = (
                    total.logical_by_class.get(cls, 0) + count
                )
            for cls, count in part.physical_by_class.items():
                total.physical_by_class[cls] = (
                    total.physical_by_class.get(cls, 0) + count
                )
        return total

    @property
    def logical_reads(self) -> int:
        return self.aggregate().logical_reads

    @property
    def physical_reads(self) -> int:
        return self.aggregate().physical_reads

    @property
    def pages_written(self) -> int:
        return self.aggregate().pages_written

    @property
    def logical_by_class(self) -> dict:
        return self.aggregate().logical_by_class

    @property
    def physical_by_class(self) -> dict:
        return self.aggregate().physical_by_class

    @property
    def buffer_hit_rate(self) -> float:
        return self.aggregate().buffer_hit_rate

    def reset(self) -> None:
        with self._lock:
            parts = list(self._parts)
        for part in parts:
            part.reset()


@dataclass(frozen=True)
class DiskModel:
    """Converts page counts into simulated I/O seconds.

    The default (0.5 ms per page) models the amortized cost of the
    multiblock sequential reads a *clustered* B+-tree range scan
    issues on a 2006-era disk (a random single-page seek would be
    ~8 ms, but both DMTM and MSDN fetches are contiguous key-range /
    region scans over z-order-clustered pages).  Results are reported
    both as raw page counts (hardware-independent, Figs 9-11 right
    column) and as simulated seconds folded into total time (Figs
    10-11 left column); pick your own constant via
    ``DiskModel(seconds_per_page=...)`` to shift regimes.
    """

    seconds_per_page: float = 0.0005

    def io_seconds(self, stats: IOStatistics) -> float:
        return stats.physical_reads * self.seconds_per_page
