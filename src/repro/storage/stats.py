"""I/O statistics and the simulated disk cost model."""

from __future__ import annotations

from dataclasses import dataclass, field

#: Well-known page classes; free-form strings are also accepted.
PAGE_CLASS_DMTM = "dmtm"
PAGE_CLASS_MSDN = "msdn"
PAGE_CLASS_OBJECTS = "objects"
PAGE_CLASS_INDEX = "index"
PAGE_CLASS_OTHER = "other"


@dataclass
class IOStatistics:
    """Counters maintained by a :class:`repro.storage.PageManager`.

    ``physical_reads`` is the paper's "pages accessed": logical page
    requests that missed the buffer pool and had to be fetched.  The
    ``*_by_class`` dicts attribute the same counts to the structure
    the page belongs to (dmtm / msdn / objects / index), so a query's
    page bill can be split per structure.
    """

    logical_reads: int = 0
    physical_reads: int = 0
    pages_written: int = 0
    logical_by_class: dict = field(default_factory=dict)
    physical_by_class: dict = field(default_factory=dict)

    def record_read(self, page_class: str, physical: bool) -> None:
        """Account one logical read (and its miss, when physical)."""
        self.logical_reads += 1
        self.logical_by_class[page_class] = (
            self.logical_by_class.get(page_class, 0) + 1
        )
        if physical:
            self.physical_reads += 1
            self.physical_by_class[page_class] = (
                self.physical_by_class.get(page_class, 0) + 1
            )

    @property
    def buffer_hit_rate(self) -> float:
        """Fraction of logical reads served from the buffer pool."""
        if self.logical_reads == 0:
            return 0.0
        return 1.0 - self.physical_reads / self.logical_reads

    def reset(self) -> None:
        self.logical_reads = 0
        self.physical_reads = 0
        self.pages_written = 0
        self.logical_by_class = {}
        self.physical_by_class = {}

    def snapshot(self) -> "IOStatistics":
        return IOStatistics(
            logical_reads=self.logical_reads,
            physical_reads=self.physical_reads,
            pages_written=self.pages_written,
            logical_by_class=dict(self.logical_by_class),
            physical_by_class=dict(self.physical_by_class),
        )

    def delta_since(self, earlier: "IOStatistics") -> "IOStatistics":
        def diff(now: dict, then: dict) -> dict:
            out = {}
            for cls, count in now.items():
                d = count - then.get(cls, 0)
                if d:
                    out[cls] = d
            return out

        return IOStatistics(
            logical_reads=self.logical_reads - earlier.logical_reads,
            physical_reads=self.physical_reads - earlier.physical_reads,
            pages_written=self.pages_written - earlier.pages_written,
            logical_by_class=diff(
                self.logical_by_class, earlier.logical_by_class
            ),
            physical_by_class=diff(
                self.physical_by_class, earlier.physical_by_class
            ),
        )


@dataclass(frozen=True)
class DiskModel:
    """Converts page counts into simulated I/O seconds.

    The default (0.5 ms per page) models the amortized cost of the
    multiblock sequential reads a *clustered* B+-tree range scan
    issues on a 2006-era disk (a random single-page seek would be
    ~8 ms, but both DMTM and MSDN fetches are contiguous key-range /
    region scans over z-order-clustered pages).  Results are reported
    both as raw page counts (hardware-independent, Figs 9-11 right
    column) and as simulated seconds folded into total time (Figs
    10-11 left column); pick your own constant via
    ``DiskModel(seconds_per_page=...)`` to shift regimes.
    """

    seconds_per_page: float = 0.0005

    def io_seconds(self, stats: IOStatistics) -> float:
        return stats.physical_reads * self.seconds_per_page
