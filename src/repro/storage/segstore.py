"""A spatially clustered, R-tree indexed record store.

MSDN data "can be stored in a spatial database (as line segments with
extra information to record their resolution level and to which plane
they belong to)" and retrieved per region+resolution via "a
conventional spatial index" (paper, Section 3.3).  This store packs
records onto pages in z-order of their MBR centres (so spatially
close records share pages) and locates them through an R-tree whose
leaf payloads are (page, slot) pairs.
"""

from __future__ import annotations

from repro.geometry.primitives import BoundingBox
from repro.spatial.rtree import RTree
from repro.spatial.zorder import zorder_key_normalized
from repro.storage.pages import PageManager
from repro.storage.records import RecordCodec, pack_page, paginate, unpack_page
from repro.storage.stats import PAGE_CLASS_OBJECTS


class SpatialRecordStore:
    """Immutable store of (mbr, record) pairs with region fetches.

    Parameters
    ----------
    items:
        Iterable of ``(BoundingBox, record)``.
    codec:
        Record encoder/decoder.
    pages:
        Shared :class:`PageManager`.
    page_class:
        Structure label for per-structure read attribution.
    """

    def __init__(
        self,
        items,
        codec: RecordCodec,
        pages: PageManager,
        page_class: str = PAGE_CLASS_OBJECTS,
    ):
        self._page_class = page_class
        self._codec = codec
        self._pages = pages
        items = list(items)
        self._count = len(items)
        self._rtree = RTree(max_entries=16)
        self._page_ids: list[int] = []
        if not items:
            return
        world = items[0][0].xy()
        for mbr, _rec in items[1:]:
            world = world.union(mbr.xy())
        # Cluster by z-order of MBR centres.
        def sort_key(pair):
            c = pair[0].center
            return zorder_key_normalized(float(c[0]), float(c[1]), world)

        ordered = sorted(items, key=sort_key)
        encoded = [codec.encode(rec) for _mbr, rec in ordered]
        cursor = 0
        for batch in paginate(encoded, pages.page_size):
            page_id = pages.allocate(
                pack_page(batch, pages.page_size), page_class=page_class
            )
            self._page_ids.append(page_id)
            for slot in range(len(batch)):
                mbr = ordered[cursor][0]
                self._rtree.insert(mbr.xy(), (page_id, slot))
                cursor += 1

    def __len__(self) -> int:
        return self._count

    @property
    def num_pages(self) -> int:
        return len(self._page_ids)

    def fetch_region(self, region: BoundingBox) -> list:
        """Decode every record whose MBR intersects ``region`` (2D)."""
        region = region.xy() if region.dim == 3 else region
        locators = self._rtree.range_query(region)
        page_cache: dict[int, list[bytes]] = {}
        out = []
        for page_id, slot in locators:
            records = page_cache.get(page_id)
            if records is None:
                records = unpack_page(self._pages.read(page_id))
                page_cache[page_id] = records
            out.append(self._codec.decode(records[slot]))
        return out
