"""Fixed-size pages behind a thread-safe LRU buffer pool.

The "disk" is a dict of immutable byte blocks; reads go through a
:class:`BufferPool` and misses increment
``IOStatistics.physical_reads`` — the paper's *pages accessed*
observable.

The buffer pool is a separate object so it can be shared: by default
every :class:`PageManager` owns a private pool sized by its
``buffer_pages`` (the original per-engine behaviour), but any number
of managers — and any number of threads — may account into one
process-wide pool (:func:`shared_buffer_pool`), which is what the
batch query executor uses.  Pool entries are keyed by
``(owner, page_id)`` so managers sharing a pool never alias each
other's page ids.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict

from repro.errors import StorageError
from repro.storage.stats import PAGE_CLASS_OTHER, IOStatistics

DEFAULT_PAGE_SIZE = 8192

#: Capacity of the process-wide shared pool (pages, not bytes).
DEFAULT_SHARED_BUFFER_PAGES = 4096

_owner_tokens = itertools.count()


class BufferPool:
    """A thread-safe LRU cache of pages, shareable across managers.

    Entries are keyed by ``(owner, page_id)``; each
    :class:`PageManager` passes its own owner token, so several
    managers (one per engine, say) can share one pool without page-id
    collisions.  All operations hold the pool's lock, so concurrent
    readers from a thread pool see a consistent LRU.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise StorageError("buffer pool capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._entries: OrderedDict[tuple, bytes] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, owner: int, page_id: int) -> bytes | None:
        """The cached page, refreshed to most-recently-used; None on miss."""
        key = (owner, page_id)
        with self._lock:
            data = self._entries.get(key)
            if data is not None:
                self._entries.move_to_end(key)
            return data

    def put(self, owner: int, page_id: int, data: bytes) -> None:
        """Insert a page, evicting least-recently-used beyond capacity."""
        with self._lock:
            self._entries[(owner, page_id)] = data
            self._entries.move_to_end((owner, page_id))
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def drop(self, owner: int | None = None) -> None:
        """Evict one owner's pages (or everything when owner is None)."""
        with self._lock:
            if owner is None:
                self._entries.clear()
                return
            for key in [k for k in self._entries if k[0] == owner]:
                del self._entries[key]


_shared_pool: BufferPool | None = None
_shared_pool_lock = threading.Lock()


def shared_buffer_pool(capacity: int | None = None) -> BufferPool:
    """The process-wide buffer pool, created on first use.

    ``capacity`` only applies to the creating call; later callers get
    the existing pool regardless.
    """
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is None:
            _shared_pool = BufferPool(
                DEFAULT_SHARED_BUFFER_PAGES if capacity is None else capacity
            )
        return _shared_pool


class PageManager:
    """Page allocator + buffer pool + I/O accounting.

    Parameters
    ----------
    page_size:
        Capacity of each page in bytes (Oracle-style 8 KiB default).
    buffer_pages:
        Capacity of the private pool built when ``buffer`` is omitted.
    stats:
        Optional shared :class:`IOStatistics` (several stores can
        account into one counter set, as one database would).
    buffer:
        Optional :class:`BufferPool` to cache through — pass
        :func:`shared_buffer_pool` to share one LRU across engines
        and threads; by default a private pool of ``buffer_pages``
        is created (the classic per-engine buffer).

    Reads are guarded by a per-manager lock so the buffer probe and
    the hit/miss accounting are atomic with respect to other threads
    using this manager.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pages: int = 256,
        stats: IOStatistics | None = None,
        buffer: BufferPool | None = None,
    ):
        if page_size < 64:
            raise StorageError("page_size must be at least 64 bytes")
        if buffer_pages < 1:
            raise StorageError("buffer_pages must be >= 1")
        self.page_size = page_size
        self.buffer_pages = buffer_pages
        self.stats = stats if stats is not None else IOStatistics()
        self._buffer = buffer if buffer is not None else BufferPool(buffer_pages)
        self._owner = next(_owner_tokens)
        self._lock = threading.RLock()
        self._disk: dict[int, bytes] = {}
        self._page_class: dict[int, str] = {}
        self._next_id = 0

    @property
    def num_pages(self) -> int:
        return len(self._disk)

    @property
    def buffer(self) -> BufferPool:
        """The pool this manager caches through (possibly shared)."""
        return self._buffer

    def allocate(self, data: bytes, page_class: str = PAGE_CLASS_OTHER) -> int:
        """Write a new page to disk; returns its page id.

        ``page_class`` labels the structure the page belongs to
        (dmtm / msdn / objects / index) so reads can be attributed
        per structure in :class:`IOStatistics`.
        """
        if len(data) > self.page_size:
            raise StorageError(
                f"page payload of {len(data)} bytes exceeds page size "
                f"{self.page_size}"
            )
        with self._lock:
            page_id = self._next_id
            self._next_id += 1
            self._disk[page_id] = bytes(data)
            if page_class != PAGE_CLASS_OTHER:
                self._page_class[page_id] = page_class
            self.stats.record_write()
        return page_id

    def page_class_of(self, page_id: int) -> str:
        """The class a page was allocated under."""
        return self._page_class.get(page_id, PAGE_CLASS_OTHER)

    def read(self, page_id: int) -> bytes:
        """Fetch a page through the buffer pool.

        The probe, the stats update and the pool insertion happen
        under the manager lock, so hit/miss accounting stays exact
        when many threads hammer one manager (the invariant
        ``logical_reads == hits + physical_reads`` holds).
        """
        page_class = self._page_class.get(page_id, PAGE_CLASS_OTHER)
        with self._lock:
            cached = self._buffer.get(self._owner, page_id)
            if cached is not None:
                self.stats.record_read(page_class, physical=False)
                return cached
            data = self._disk.get(page_id)
            if data is None:
                raise StorageError(f"page {page_id} does not exist")
            self.stats.record_read(page_class, physical=True)
            self._buffer.put(self._owner, page_id, data)
            return data

    def drop_buffer(self) -> None:
        """Evict this manager's pages (cold-cache experiment runs)."""
        self._buffer.drop(self._owner)
