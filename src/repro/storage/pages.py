"""Fixed-size pages behind a thread-safe LRU buffer pool.

The "disk" is a :class:`SimulatedDisk` of immutable byte blocks;
reads go through a :class:`BufferPool` and misses increment
``IOStatistics.physical_reads`` — the paper's *pages accessed*
observable.

The buffer pool is a separate object so it can be shared: by default
every :class:`PageManager` owns a private pool sized by its
``buffer_pages`` (the original per-engine behaviour), but any number
of managers — and any number of threads — may account into one
process-wide pool (:func:`shared_buffer_pool`), which is what the
batch query executor uses.  Pool entries are keyed by
``(owner, page_id)`` so managers sharing a pool never alias each
other's page ids.

Resilience: every allocated page carries a CRC-32; a physical read
verifies it and retries transient faults and detected corruption
under a :class:`~repro.storage.faults.RetryPolicy`, surfacing
:class:`~repro.errors.PageReadError` /
:class:`~repro.errors.PageCorruptionError` only once the policy is
exhausted.  With no :class:`~repro.storage.faults.FaultInjector`
attached the read path is behaviourally identical to the pre-fault
code: the CRC always matches and no retry/fault counter moves.
"""

from __future__ import annotations

import itertools
import threading
import zlib
from collections import OrderedDict

from repro.errors import (
    PageCorruptionError,
    PageReadError,
    QuarantinedPageError,
    StorageError,
)
from repro.obs.context import active_profiler
from repro.obs.metrics import get_registry
from repro.obs.tracing import NOOP_SPAN, NULL_TRACER
from repro.storage.faults import (
    FAULT_CORRUPT,
    FAULT_TRANSIENT,
    QUARANTINE_BLOCKED,
    QUARANTINE_PROBE,
    FaultInjector,
    FaultStats,
    PageQuarantine,
    RetryPolicy,
    _TransientFault,
)
from repro.storage.stats import PAGE_CLASS_OTHER, IOStatistics

DEFAULT_PAGE_SIZE = 8192

#: Capacity of the process-wide shared pool (pages, not bytes).
DEFAULT_SHARED_BUFFER_PAGES = 4096

_owner_tokens = itertools.count()


class SimulatedDisk:
    """The byte blocks behind a :class:`PageManager`, with an optional
    fault injector on the read path.

    A read attempt asks the injector first: it may raise a transient
    fault (the manager retries), hand back a corrupted payload (the
    manager's CRC check catches it) or report a simulated latency
    spike alongside clean data.  Without an injector, reads return the
    stored block and zero latency — the exact pre-fault behaviour.
    """

    def __init__(self, fault_injector: FaultInjector | None = None):
        self.fault_injector = fault_injector
        self._blocks: dict[int, bytes] = {}

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._blocks

    def write(self, page_id: int, data: bytes) -> None:
        self._blocks[page_id] = bytes(data)

    def read(self, page_id: int) -> tuple[bytes, float]:
        """One read attempt: (payload, simulated extra seconds).

        Raises :class:`~repro.errors.StorageError` for a page that was
        never written, or the injector's transient marker for an
        attempt the schedule failed.
        """
        data = self._blocks.get(page_id)
        if data is None:
            raise StorageError(f"page {page_id} does not exist")
        if self.fault_injector is None:
            return data, 0.0
        return self.fault_injector.on_read(page_id, data)


class BufferPool:
    """A thread-safe LRU cache of pages, shareable across managers.

    Entries are keyed by ``(owner, page_id)``; each
    :class:`PageManager` passes its own owner token, so several
    managers (one per engine, say) can share one pool without page-id
    collisions.  All operations hold the pool's lock, so concurrent
    readers from a thread pool see a consistent LRU.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise StorageError("buffer pool capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._entries: OrderedDict[tuple, bytes] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, owner: int, page_id: int) -> bytes | None:
        """The cached page, refreshed to most-recently-used; None on miss."""
        key = (owner, page_id)
        with self._lock:
            data = self._entries.get(key)
            if data is not None:
                self._entries.move_to_end(key)
            return data

    def put(self, owner: int, page_id: int, data: bytes) -> None:
        """Insert a page, evicting least-recently-used beyond capacity."""
        with self._lock:
            self._entries[(owner, page_id)] = data
            self._entries.move_to_end((owner, page_id))
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def drop(self, owner: int | None = None) -> None:
        """Evict one owner's pages (or everything when owner is None)."""
        with self._lock:
            if owner is None:
                self._entries.clear()
                return
            for key in [k for k in self._entries if k[0] == owner]:
                del self._entries[key]


_shared_pool: BufferPool | None = None
_shared_pool_lock = threading.Lock()


def shared_buffer_pool(capacity: int | None = None) -> BufferPool:
    """The process-wide buffer pool, created on first use.

    ``capacity`` only applies to the creating call; later callers get
    the existing pool regardless.
    """
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is None:
            _shared_pool = BufferPool(
                DEFAULT_SHARED_BUFFER_PAGES if capacity is None else capacity
            )
        return _shared_pool


class PageManager:
    """Page allocator + buffer pool + I/O accounting.

    Parameters
    ----------
    page_size:
        Capacity of each page in bytes (Oracle-style 8 KiB default).
    buffer_pages:
        Capacity of the private pool built when ``buffer`` is omitted.
    stats:
        Optional shared :class:`IOStatistics` (several stores can
        account into one counter set, as one database would).
    buffer:
        Optional :class:`BufferPool` to cache through — pass
        :func:`shared_buffer_pool` to share one LRU across engines
        and threads; by default a private pool of ``buffer_pages``
        is created (the classic per-engine buffer).
    fault_injector:
        Optional :class:`~repro.storage.faults.FaultInjector` wired
        into the simulated disk's read path.
    retry_policy:
        :class:`~repro.storage.faults.RetryPolicy` governing how
        transient faults and detected corruption are retried before a
        :class:`~repro.errors.PageReadError` /
        :class:`~repro.errors.PageCorruptionError` surfaces.
    tracer:
        Optional :class:`repro.obs.tracing.Tracer`; fault recovery
        emits ``storage.retry`` spans through it (a clean read emits
        nothing).
    quarantine:
        Optional :class:`~repro.storage.faults.PageQuarantine`; by
        default each manager owns a private one.  A page whose read
        exhausts the retry policy is quarantined: later buffer misses
        for it fail fast with
        :class:`~repro.errors.QuarantinedPageError` instead of
        re-running the retry storm, until a probation read readmits
        it.

    Reads are guarded by a per-manager lock so the buffer probe and
    the hit/miss accounting are atomic with respect to other threads
    using this manager.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pages: int = 256,
        stats: IOStatistics | None = None,
        buffer: BufferPool | None = None,
        fault_injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        tracer=None,
        quarantine: PageQuarantine | None = None,
    ):
        if page_size < 64:
            raise StorageError("page_size must be at least 64 bytes")
        if buffer_pages < 1:
            raise StorageError("buffer_pages must be >= 1")
        self.page_size = page_size
        self.buffer_pages = buffer_pages
        self.stats = stats if stats is not None else IOStatistics()
        self._buffer = buffer if buffer is not None else BufferPool(buffer_pages)
        self._owner = next(_owner_tokens)
        self._lock = threading.RLock()
        self._disk = SimulatedDisk(fault_injector)
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.quarantine = (
            quarantine if quarantine is not None else PageQuarantine()
        )
        self.fault_stats = FaultStats()
        self._crc: dict[int, int] = {}
        self._page_class: dict[int, str] = {}
        self._next_id = 0

    @property
    def num_pages(self) -> int:
        return len(self._disk)

    @property
    def buffer(self) -> BufferPool:
        """The pool this manager caches through (possibly shared)."""
        return self._buffer

    @property
    def fault_injector(self) -> FaultInjector | None:
        """The injector on the simulated disk's read path, if any."""
        return self._disk.fault_injector

    @fault_injector.setter
    def fault_injector(self, injector: FaultInjector | None) -> None:
        self._disk.fault_injector = injector

    def allocate(self, data: bytes, page_class: str = PAGE_CLASS_OTHER) -> int:
        """Write a new page to disk; returns its page id.

        ``page_class`` labels the structure the page belongs to
        (dmtm / msdn / objects / index) so reads can be attributed
        per structure in :class:`IOStatistics`.  Every page gets a
        CRC-32 of its payload, verified on each physical read.
        """
        if len(data) > self.page_size:
            raise StorageError(
                f"page payload of {len(data)} bytes exceeds page size "
                f"{self.page_size}"
            )
        with self._lock:
            page_id = self._next_id
            self._next_id += 1
            self._disk.write(page_id, data)
            self._crc[page_id] = zlib.crc32(data)
            if page_class != PAGE_CLASS_OTHER:
                self._page_class[page_id] = page_class
            self.stats.record_write()
        return page_id

    def page_class_of(self, page_id: int) -> str:
        """The class a page was allocated under."""
        return self._page_class.get(page_id, PAGE_CLASS_OTHER)

    def read(self, page_id: int) -> bytes:
        """Fetch a page through the buffer pool.

        The probe, the stats update and the pool insertion happen
        under the manager lock, so hit/miss accounting stays exact
        when many threads hammer one manager (the invariant
        ``logical_reads == hits + physical_reads`` holds).
        """
        page_class = self._page_class.get(page_id, PAGE_CLASS_OTHER)
        profiler = active_profiler()
        with self._lock:
            cached = self._buffer.get(self._owner, page_id)
            if cached is not None:
                self.stats.record_read(page_class, physical=False)
                profiler.count("logical_reads", 1)
                return cached
            # A buffered copy is valid data, so the quarantine only
            # gates disk access: known-bad pages fail fast here
            # instead of re-running the retry storm, except for the
            # periodic probation read that checks whether the page
            # has healed.
            verdict = self.quarantine.gate(self._owner, page_id)
            if verdict == QUARANTINE_BLOCKED:
                self.fault_stats.quarantine_fastfails_total += 1
                get_registry().counter(
                    "storage.quarantine_fastfails_total"
                ).add(1)
                reason = self.quarantine.reason_of(self._owner, page_id)
                raise QuarantinedPageError(
                    f"page {page_id} is quarantined ({reason}); read "
                    "refused without touching the disk"
                )
            if verdict == QUARANTINE_PROBE:
                self.fault_stats.quarantine_probes_total += 1
                get_registry().counter("storage.quarantine_probes_total").add(1)
            # A buffer miss is the query's page-I/O moment: the
            # physical fetch (plus CRC/retry machinery) is billed to
            # the "page-io" phase, with per-class read attribution.
            with profiler.phase("page-io"):
                try:
                    data = self._fetch_verified(page_id)
                except (PageReadError, PageCorruptionError) as exc:
                    if verdict == QUARANTINE_PROBE:
                        self.quarantine.probe_failed(self._owner, page_id)
                    else:
                        self.quarantine.admit(
                            self._owner,
                            page_id,
                            reason=(
                                FAULT_CORRUPT
                                if isinstance(exc, PageCorruptionError)
                                else FAULT_TRANSIENT
                            ),
                            page_class=page_class,
                        )
                        self.fault_stats.pages_quarantined_total += 1
                        get_registry().counter(
                            "storage.pages_quarantined_total"
                        ).add(1)
                    raise
                profiler.count("logical_reads", 1)
                profiler.count("physical_reads", 1)
                profiler.count("physical." + page_class, 1)
            if verdict == QUARANTINE_PROBE:
                self.quarantine.probe_succeeded(self._owner, page_id)
                self.fault_stats.pages_readmitted_total += 1
                get_registry().counter("storage.pages_readmitted_total").add(1)
            self.stats.record_read(page_class, physical=True)
            self._buffer.put(self._owner, page_id, data)
            return data

    def _fetch_verified(self, page_id: int) -> bytes:
        """Fetch a page from the simulated disk, verifying its CRC and
        retrying transient faults / detected corruption under the
        retry policy.  Raises the *last* failure once attempts are
        exhausted (so a final corrupted attempt surfaces as
        :class:`PageCorruptionError`, a final transient as
        :class:`PageReadError`)."""
        policy = self.retry_policy
        expected_crc = self._crc.get(page_id)
        last_error: StorageError | None = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                backoff = policy.backoff_seconds(attempt - 1)
                self.fault_stats.retries_total += 1
                self.fault_stats.backoff_seconds_total += backoff
                registry = get_registry()
                registry.counter("storage.retries_total").add(1)
                registry.counter("storage.retry_backoff_seconds").add(backoff)
            span_cm = (
                self.tracer.span(
                    "storage.retry", page_id=page_id, attempt=attempt
                )
                if attempt > 1
                else NOOP_SPAN
            )
            try:
                with span_cm:
                    data, latency = self._disk.read(page_id)
            except _TransientFault as exc:
                self.fault_stats.transient_faults_total += 1
                get_registry().counter("storage.transient_faults_total").add(1)
                last_error = PageReadError(f"page {page_id}: {exc}")
                continue
            if latency:
                self.fault_stats.latency_events_total += 1
                self.fault_stats.latency_seconds_total += latency
                registry = get_registry()
                registry.counter("storage.fault_latency_events_total").add(1)
                registry.counter("storage.fault_latency_seconds").add(latency)
            if expected_crc is not None and zlib.crc32(data) != expected_crc:
                self.fault_stats.corruptions_total += 1
                get_registry().counter("storage.corruptions_total").add(1)
                last_error = PageCorruptionError(
                    f"page {page_id} failed its CRC check"
                )
                continue
            return data
        self.fault_stats.reads_failed_total += 1
        get_registry().counter("storage.read_failures_total").add(1)
        assert last_error is not None
        raise last_error

    def drop_buffer(self) -> None:
        """Evict this manager's pages (cold-cache experiment runs)."""
        self._buffer.drop(self._owner)
