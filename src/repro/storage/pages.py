"""Fixed-size pages behind an LRU buffer pool.

The "disk" is a dict of immutable byte blocks; reads go through the
buffer pool and misses increment ``IOStatistics.physical_reads`` —
the paper's *pages accessed* observable.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import StorageError
from repro.storage.stats import PAGE_CLASS_OTHER, IOStatistics

DEFAULT_PAGE_SIZE = 8192


class PageManager:
    """Page allocator + buffer pool + I/O accounting.

    Parameters
    ----------
    page_size:
        Capacity of each page in bytes (Oracle-style 8 KiB default).
    buffer_pages:
        Number of pages the LRU buffer pool can hold.
    stats:
        Optional shared :class:`IOStatistics` (several stores can
        account into one counter set, as one database would).
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pages: int = 256,
        stats: IOStatistics | None = None,
    ):
        if page_size < 64:
            raise StorageError("page_size must be at least 64 bytes")
        if buffer_pages < 1:
            raise StorageError("buffer_pages must be >= 1")
        self.page_size = page_size
        self.buffer_pages = buffer_pages
        self.stats = stats if stats is not None else IOStatistics()
        self._disk: dict[int, bytes] = {}
        self._buffer: OrderedDict[int, bytes] = OrderedDict()
        self._page_class: dict[int, str] = {}
        self._next_id = 0

    @property
    def num_pages(self) -> int:
        return len(self._disk)

    def allocate(self, data: bytes, page_class: str = PAGE_CLASS_OTHER) -> int:
        """Write a new page to disk; returns its page id.

        ``page_class`` labels the structure the page belongs to
        (dmtm / msdn / objects / index) so reads can be attributed
        per structure in :class:`IOStatistics`.
        """
        if len(data) > self.page_size:
            raise StorageError(
                f"page payload of {len(data)} bytes exceeds page size "
                f"{self.page_size}"
            )
        page_id = self._next_id
        self._next_id += 1
        self._disk[page_id] = bytes(data)
        if page_class != PAGE_CLASS_OTHER:
            self._page_class[page_id] = page_class
        self.stats.pages_written += 1
        return page_id

    def page_class_of(self, page_id: int) -> str:
        """The class a page was allocated under."""
        return self._page_class.get(page_id, PAGE_CLASS_OTHER)

    def read(self, page_id: int) -> bytes:
        """Fetch a page through the buffer pool."""
        page_class = self._page_class.get(page_id, PAGE_CLASS_OTHER)
        cached = self._buffer.get(page_id)
        if cached is not None:
            self.stats.record_read(page_class, physical=False)
            self._buffer.move_to_end(page_id)
            return cached
        data = self._disk.get(page_id)
        if data is None:
            raise StorageError(f"page {page_id} does not exist")
        self.stats.record_read(page_class, physical=True)
        self._buffer[page_id] = data
        if len(self._buffer) > self.buffer_pages:
            self._buffer.popitem(last=False)
        return data

    def drop_buffer(self) -> None:
        """Empty the buffer pool (cold-cache experiment runs)."""
        self._buffer.clear()
