"""Simulated paged storage with buffer pool and I/O accounting.

The paper measures "number of disk pages accessed" against an Oracle
9.2 back end with the Spatial Option switched *off* ("in order to
have a better control and understanding of the query execution
performance. All spatial indexes used in our experiments are
implemented by us").  This package recreates that setup: records are
serialized onto fixed-size pages, reads go through an LRU buffer
pool, and every buffer miss counts as one page access.  A configurable
per-page latency converts page counts into the simulated I/O seconds
that enter "total time" in Figures 10–11.
"""

from repro.storage.stats import IOStatistics, DiskModel, ThreadLocalIOStatistics
from repro.storage.pages import (
    BufferPool,
    PageManager,
    SimulatedDisk,
    shared_buffer_pool,
)
from repro.storage.faults import (
    FaultEvent,
    FaultInjector,
    FaultStats,
    RetryPolicy,
)
from repro.storage.records import RecordCodec, pack_floats, unpack_floats
from repro.storage.clustered import ClusteredRecordStore
from repro.storage.segstore import SpatialRecordStore
from repro.storage.locator import LocatorStore

__all__ = [
    "IOStatistics",
    "DiskModel",
    "ThreadLocalIOStatistics",
    "BufferPool",
    "PageManager",
    "SimulatedDisk",
    "shared_buffer_pool",
    "FaultEvent",
    "FaultInjector",
    "FaultStats",
    "RetryPolicy",
    "RecordCodec",
    "pack_floats",
    "unpack_floats",
    "ClusteredRecordStore",
    "SpatialRecordStore",
    "LocatorStore",
]
