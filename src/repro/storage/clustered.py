"""A read-only record store clustered by a sort key.

DMTM data is "pre-created and a clustering B+ tree index is used"
(paper, Section 5.1): the structure is built once, then only read
during query processing.  :class:`ClusteredRecordStore` mirrors that:
records are sorted by a clustering key (e.g. ``(LOD band, z-order)``),
packed densely onto pages in key order, and located through a
B+-tree whose leaves point at (page, slot).  Key-range fetches then
touch near-minimal, contiguous page sets.
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.spatial.bplustree import BPlusTree
from repro.storage.pages import PageManager
from repro.storage.records import RecordCodec, pack_page, paginate, unpack_page
from repro.storage.stats import PAGE_CLASS_INDEX


class ClusteredRecordStore:
    """Immutable clustered store of (key, record) pairs.

    Parameters
    ----------
    items:
        Iterable of ``(key, record)``; keys must be mutually
        comparable (tuples work well).
    codec:
        Record encoder/decoder.
    pages:
        The shared :class:`PageManager` this store writes into.
    page_class:
        Structure label for per-structure read attribution.
    """

    def __init__(
        self,
        items,
        codec: RecordCodec,
        pages: PageManager,
        page_class: str = PAGE_CLASS_INDEX,
    ):
        self._codec = codec
        self._pages = pages
        ordered = sorted(items, key=lambda kv: kv[0])
        encoded = [codec.encode(rec) for _key, rec in ordered]
        self._index = BPlusTree(order=64)
        self._page_ids: list[int] = []
        cursor = 0
        for batch in paginate(encoded, pages.page_size):
            page_id = pages.allocate(
                pack_page(batch, pages.page_size), page_class=page_class
            )
            self._page_ids.append(page_id)
            for slot in range(len(batch)):
                key = ordered[cursor][0]
                self._index.insert(key, (page_id, slot))
                cursor += 1
        self._count = cursor
        if cursor != len(ordered):
            raise StorageError("pagination lost records")

    def __len__(self) -> int:
        return self._count

    @property
    def num_pages(self) -> int:
        return len(self._page_ids)

    def fetch_range(self, lo_key, hi_key) -> list:
        """Decode every record with lo_key <= key <= hi_key.

        Page reads are deduplicated per call (one logical fetch per
        page, as a real scan would do) but still go through the
        buffer pool, so repeated cold fetches cost physical reads.
        """
        page_cache: dict[int, list[bytes]] = {}
        out = []
        for _key, (page_id, slot) in self._index.range_scan(lo_key, hi_key):
            records = page_cache.get(page_id)
            if records is None:
                records = unpack_page(self._pages.read(page_id))
                page_cache[page_id] = records
            out.append(self._codec.decode(records[slot]))
        return out

    def fetch_keys_range(self, lo_key, hi_key) -> list:
        """Keys only (no page I/O — index-only scan)."""
        return [key for key, _loc in self._index.range_scan(lo_key, hi_key)]

    def scan_all(self) -> list:
        """Decode every record (full scan, in key order)."""
        out = []
        for page_id in self._page_ids:
            for blob in unpack_page(self._pages.read(page_id)):
                out.append(self._codec.decode(blob))
        return out
