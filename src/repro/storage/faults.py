"""Fault injection for the simulated disk.

A real deployment sees flaky disks: transient read errors, silently
flipped bits, latency spikes.  The simulated storage layer models all
three so the rest of the stack can be hardened against them:

* :class:`FaultInjector` — draws faults from a *seeded* schedule, one
  draw per physical read attempt, so a test run is reproducible;
* :class:`RetryPolicy` — bounded attempts with deterministic
  exponential backoff (the backoff is *simulated* seconds, accounted
  but never slept, so fault-heavy tests stay fast);
* :class:`FaultStats` — per-manager counters of what was injected,
  detected and retried, mirrored into the process-wide
  :mod:`repro.obs` metrics registry.

The injector sits on the read path of
:class:`~repro.storage.pages.SimulatedDisk`: a transient fault raises
:class:`~repro.errors.PageReadError` for that attempt, a corruption
fault flips bytes in the returned payload (detected downstream by the
page CRC), a latency fault reports simulated extra seconds.  With no
injector attached the read path is byte-for-byte the pre-fault
behaviour.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.errors import StorageError

#: Fault kinds drawn by the injector.
FAULT_TRANSIENT = "transient"
FAULT_CORRUPT = "corrupt"
FAULT_LATENCY = "latency"
FAULT_DEAD = "dead"  # page on the kill-list: every attempt fails


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the injector's log."""

    kind: str  # transient | corrupt | latency
    page_id: int
    sequence: int  # monotone per-injector event number
    detail: float = 0.0  # latency seconds for latency faults


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``max_attempts`` counts the initial attempt too (so 4 means one
    try plus up to three retries).  Backoff for retry *i* (1-based) is
    ``backoff_base * backoff_factor ** (i - 1)`` seconds — simulated,
    never slept, accumulated into :class:`FaultStats`.
    """

    max_attempts: int = 4
    backoff_base: float = 0.001
    backoff_factor: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise StorageError("retry policy needs max_attempts >= 1")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise StorageError(
                "retry backoff needs base >= 0 and factor >= 1"
            )

    def backoff_seconds(self, retry_number: int) -> float:
        """Deterministic backoff before the ``retry_number``-th retry
        (1-based)."""
        return self.backoff_base * self.backoff_factor ** (retry_number - 1)


@dataclass
class FaultStats:
    """Counters kept by a :class:`~repro.storage.pages.PageManager`.

    ``retries_total`` counts re-attempts actually performed; with
    every fault eventually recovered it equals the number of failed
    attempts (one retry per detected transient or corruption).
    """

    retries_total: int = 0
    transient_faults_total: int = 0
    corruptions_total: int = 0
    latency_events_total: int = 0
    latency_seconds_total: float = 0.0
    backoff_seconds_total: float = 0.0
    reads_failed_total: int = 0  # reads that exhausted the policy
    pages_quarantined_total: int = 0
    quarantine_fastfails_total: int = 0  # reads refused without disk I/O
    quarantine_probes_total: int = 0
    pages_readmitted_total: int = 0

    def as_dict(self) -> dict:
        return {
            "retries_total": self.retries_total,
            "transient_faults_total": self.transient_faults_total,
            "corruptions_total": self.corruptions_total,
            "latency_events_total": self.latency_events_total,
            "latency_seconds_total": self.latency_seconds_total,
            "backoff_seconds_total": self.backoff_seconds_total,
            "reads_failed_total": self.reads_failed_total,
            "pages_quarantined_total": self.pages_quarantined_total,
            "quarantine_fastfails_total": self.quarantine_fastfails_total,
            "quarantine_probes_total": self.quarantine_probes_total,
            "pages_readmitted_total": self.pages_readmitted_total,
        }


class _TransientFault(Exception):
    """Internal marker raised by the injector for one failed attempt
    (converted to PageReadError once retries are exhausted)."""


class FaultInjector:
    """Seeded fault schedule for the simulated disk.

    Parameters
    ----------
    seed:
        Seed of the private RNG — the whole schedule is a
        deterministic function of the seed and the sequence of read
        attempts.
    transient_rate, corrupt_rate, latency_rate:
        Independent per-attempt probabilities of each fault kind (a
        transient draw wins over a corruption draw; latency is
        orthogonal and can accompany a successful read).
    latency_seconds:
        Simulated extra seconds added by one latency spike.
    max_faults:
        Optional hard cap on injected transient+corrupt faults (keeps
        worst-case retry storms bounded in stress tests).
    dead_pages:
        Pages that fail *every* read attempt — a persistent fault, as
        opposed to the recoverable rate-drawn kinds.  Dead-page events
        are exempt from ``max_faults`` (they are not a random storm to
        bound but a fixture of the schedule) yet still counted in
        ``injected_total`` so the retry/failure reconciliation identity
        holds.

    Thread safety: draws take the injector lock, so worker threads
    hammering one disk see a consistent (if interleaving-dependent)
    schedule, and the log/counters never tear.
    """

    def __init__(
        self,
        seed: int = 0,
        transient_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency_seconds: float = 0.05,
        max_faults: int | None = None,
        dead_pages: "set[int] | frozenset[int] | list[int] | None" = None,
    ):
        for name, rate in (
            ("transient_rate", transient_rate),
            ("corrupt_rate", corrupt_rate),
            ("latency_rate", latency_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise StorageError(f"{name} must be in [0, 1], got {rate}")
        self.transient_rate = transient_rate
        self.corrupt_rate = corrupt_rate
        self.latency_rate = latency_rate
        self.latency_seconds = latency_seconds
        self.max_faults = max_faults
        self.dead_pages: set[int] = set(dead_pages or ())
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._sequence = 0
        self.log: list[FaultEvent] = []
        self.counts: dict[str, int] = {
            FAULT_TRANSIENT: 0,
            FAULT_CORRUPT: 0,
            FAULT_LATENCY: 0,
            FAULT_DEAD: 0,
        }

    def kill(self, page_ids) -> None:
        """Permanently fail every future read of ``page_ids``."""
        with self._lock:
            self.dead_pages.update(int(p) for p in page_ids)

    def revive(self, page_ids) -> None:
        """Remove pages from the kill-list (the disk 'heals')."""
        with self._lock:
            self.dead_pages.difference_update(int(p) for p in page_ids)

    # ------------------------------------------------------------------

    def _record(self, kind: str, page_id: int, detail: float = 0.0) -> None:
        event = FaultEvent(
            kind=kind, page_id=page_id, sequence=self._sequence, detail=detail
        )
        self._sequence += 1
        self.log.append(event)
        self.counts[kind] += 1

    def _budget_left(self) -> bool:
        if self.max_faults is None:
            return True
        hard = self.counts[FAULT_TRANSIENT] + self.counts[FAULT_CORRUPT]
        return hard < self.max_faults

    def on_read(self, page_id: int, data: bytes) -> tuple[bytes, float]:
        """One physical read attempt: returns (payload, extra seconds).

        Raises the internal transient marker when this attempt fails;
        may return a corrupted payload (the caller's CRC check detects
        it); may report simulated latency alongside a clean payload.
        """
        with self._lock:
            if page_id in self.dead_pages:
                self._record(FAULT_DEAD, page_id)
                raise _TransientFault(
                    f"page {page_id} is on the kill-list (persistent fault)"
                )
            latency = 0.0
            if self.latency_rate and self._rng.random() < self.latency_rate:
                latency = self.latency_seconds
                self._record(FAULT_LATENCY, page_id, detail=latency)
            if self._budget_left():
                if (
                    self.transient_rate
                    and self._rng.random() < self.transient_rate
                ):
                    self._record(FAULT_TRANSIENT, page_id)
                    raise _TransientFault(
                        f"injected transient fault on page {page_id}"
                    )
                if (
                    self.corrupt_rate
                    and self._rng.random() < self.corrupt_rate
                ):
                    self._record(FAULT_CORRUPT, page_id)
                    return self._corrupt(data), latency
            return data, latency

    def _corrupt(self, data: bytes) -> bytes:
        """Flip one byte at a schedule-chosen offset (empty pages get
        a phantom byte appended so the corruption is still visible)."""
        if not data:
            return b"\xff"
        index = self._rng.randrange(len(data))
        flipped = bytes([data[index] ^ 0xFF])
        return data[:index] + flipped + data[index + 1:]

    # ------------------------------------------------------------------

    @property
    def injected_total(self) -> int:
        """Transient + corruption + dead-page faults injected so far."""
        return (
            self.counts[FAULT_TRANSIENT]
            + self.counts[FAULT_CORRUPT]
            + self.counts[FAULT_DEAD]
        )

    def summary(self) -> dict:
        """JSON-ready injector state (for bench reports)."""
        with self._lock:
            return {
                "transient": self.counts[FAULT_TRANSIENT],
                "corrupt": self.counts[FAULT_CORRUPT],
                "latency": self.counts[FAULT_LATENCY],
                "dead": self.counts[FAULT_DEAD],
                "dead_pages": len(self.dead_pages),
                "latency_seconds": sum(
                    e.detail for e in self.log if e.kind == FAULT_LATENCY
                ),
                "events": len(self.log),
            }


# ----------------------------------------------------------------------
# Page quarantine: fail fast on known-bad pages, probe for recovery.


#: Gate verdicts returned by :meth:`PageQuarantine.gate`.
QUARANTINE_CLEAR = "clear"
QUARANTINE_BLOCKED = "blocked"
QUARANTINE_PROBE = "probe"


@dataclass
class QuarantineEntry:
    """One quarantined ``(owner, page_id)`` with its probation state.

    ``cooldown`` is counted in *gated reads*, not wall clock, so the
    lifecycle is deterministic: after admission (or a failed probe)
    the next ``cooldown - 1`` reads fail fast and the ``cooldown``-th
    becomes a probe that goes through the full retry cycle.  Each
    failed probe doubles the cooldown up to a cap, so a page that
    stays dead costs geometrically less over time.
    """

    owner: int
    page_id: int
    reason: str  # transient | corrupt
    page_class: str
    cooldown: int
    fast_fails: int = 0
    probes: int = 0
    since_probe: int = 0
    probing: bool = False


class PageQuarantine:
    """Registry of pages whose reads exhausted the retry policy.

    A quarantined page costs one dictionary lookup per read instead of
    a full retry storm; a deterministic read-counted probation path
    re-probes the disk so a healed page is readmitted.  Cumulative
    per-page history (admissions, probes, readmissions) survives
    readmission so oracles can bound the total disk attempts a bad
    page may ever have seen.
    """

    def __init__(self, cooldown_reads: int = 8, max_cooldown_reads: int = 128):
        if cooldown_reads < 1 or max_cooldown_reads < cooldown_reads:
            raise StorageError(
                "quarantine needs 1 <= cooldown_reads <= max_cooldown_reads"
            )
        self.cooldown_reads = cooldown_reads
        self.max_cooldown_reads = max_cooldown_reads
        self._lock = threading.Lock()
        self._entries: dict[tuple[int, int], QuarantineEntry] = {}
        self._history: dict[tuple[int, int], dict] = {}
        self.fast_fails_total = 0
        self.probes_total = 0
        self.readmissions_total = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return tuple(key) in self._entries

    def entries(self) -> list[QuarantineEntry]:
        """Snapshot of the current quarantine population."""
        with self._lock:
            return list(self._entries.values())

    def history(self) -> dict[tuple[int, int], dict]:
        """Cumulative per-page lifecycle counts (survive readmission)."""
        with self._lock:
            return {key: dict(h) for key, h in self._history.items()}

    def reason_of(self, owner: int, page_id: int) -> str | None:
        entry = self._entries.get((owner, page_id))
        return entry.reason if entry is not None else None

    # -- read-path hooks ------------------------------------------------

    def gate(self, owner: int, page_id: int) -> str:
        """Classify one read of ``page_id``: ``clear`` (not
        quarantined), ``blocked`` (fail fast), or ``probe`` (let this
        read through the full retry cycle)."""
        with self._lock:
            entry = self._entries.get((owner, page_id))
            if entry is None:
                return QUARANTINE_CLEAR
            if not entry.probing:
                entry.since_probe += 1
                if entry.since_probe >= entry.cooldown:
                    entry.probing = True
                    entry.since_probe = 0
                    entry.probes += 1
                    self.probes_total += 1
                    self._history[(owner, page_id)]["probes"] += 1
                    return QUARANTINE_PROBE
            entry.fast_fails += 1
            self.fast_fails_total += 1
            return QUARANTINE_BLOCKED

    def admit(
        self, owner: int, page_id: int, reason: str, page_class: str
    ) -> None:
        """Quarantine a page whose read just exhausted the policy."""
        with self._lock:
            key = (owner, page_id)
            if key in self._entries:
                self._entries[key].reason = reason
                return
            self._entries[key] = QuarantineEntry(
                owner=owner,
                page_id=page_id,
                reason=reason,
                page_class=page_class,
                cooldown=self.cooldown_reads,
            )
            history = self._history.setdefault(
                key, {"admissions": 0, "probes": 0, "readmissions": 0}
            )
            history["admissions"] += 1

    def probe_failed(self, owner: int, page_id: int) -> None:
        """A probation read exhausted the policy again: keep the page
        quarantined with a doubled (capped) cooldown."""
        with self._lock:
            entry = self._entries.get((owner, page_id))
            if entry is None:
                return
            entry.probing = False
            entry.since_probe = 0
            entry.cooldown = min(entry.cooldown * 2, self.max_cooldown_reads)

    def probe_succeeded(self, owner: int, page_id: int) -> None:
        """A probation read came back clean: readmit the page."""
        with self._lock:
            if self._entries.pop((owner, page_id), None) is not None:
                self.readmissions_total += 1
                self._history[(owner, page_id)]["readmissions"] += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "quarantined": len(self._entries),
                "fast_fails_total": self.fast_fails_total,
                "probes_total": self.probes_total,
                "readmissions_total": self.readmissions_total,
            }


def kill_random_pages(
    pages,
    fraction: float,
    seed: int = 0,
    classes: tuple[str, ...] = ("dmtm", "msdn"),
) -> list[int]:
    """Permanently kill a seeded random fraction of a manager's pages.

    Picks ``floor(fraction * len(eligible))`` pages whose page class is
    in ``classes`` (by default the DMTM/MSDN bound sources — object and
    index pages stay readable, matching the chaos-benchmark contract)
    and adds them to the manager's injector kill-list, installing a
    zero-rate :class:`FaultInjector` if none is attached.  Returns the
    sorted killed page ids.
    """
    if not 0.0 <= fraction <= 1.0:
        raise StorageError(f"fraction must be in [0, 1], got {fraction}")
    eligible = [
        page_id
        for page_id in range(pages.num_pages)
        if pages.page_class_of(page_id) in classes
    ]
    count = int(len(eligible) * fraction)
    if count == 0:
        return []
    rng = random.Random(seed)
    dead = sorted(rng.sample(eligible, count))
    injector = pages.fault_injector
    if injector is None:
        injector = FaultInjector(seed=seed)
        pages.fault_injector = injector
    injector.kill(dead)
    return dead
