"""Fault injection for the simulated disk.

A real deployment sees flaky disks: transient read errors, silently
flipped bits, latency spikes.  The simulated storage layer models all
three so the rest of the stack can be hardened against them:

* :class:`FaultInjector` — draws faults from a *seeded* schedule, one
  draw per physical read attempt, so a test run is reproducible;
* :class:`RetryPolicy` — bounded attempts with deterministic
  exponential backoff (the backoff is *simulated* seconds, accounted
  but never slept, so fault-heavy tests stay fast);
* :class:`FaultStats` — per-manager counters of what was injected,
  detected and retried, mirrored into the process-wide
  :mod:`repro.obs` metrics registry.

The injector sits on the read path of
:class:`~repro.storage.pages.SimulatedDisk`: a transient fault raises
:class:`~repro.errors.PageReadError` for that attempt, a corruption
fault flips bytes in the returned payload (detected downstream by the
page CRC), a latency fault reports simulated extra seconds.  With no
injector attached the read path is byte-for-byte the pre-fault
behaviour.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.errors import StorageError

#: Fault kinds drawn by the injector.
FAULT_TRANSIENT = "transient"
FAULT_CORRUPT = "corrupt"
FAULT_LATENCY = "latency"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the injector's log."""

    kind: str  # transient | corrupt | latency
    page_id: int
    sequence: int  # monotone per-injector event number
    detail: float = 0.0  # latency seconds for latency faults


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``max_attempts`` counts the initial attempt too (so 4 means one
    try plus up to three retries).  Backoff for retry *i* (1-based) is
    ``backoff_base * backoff_factor ** (i - 1)`` seconds — simulated,
    never slept, accumulated into :class:`FaultStats`.
    """

    max_attempts: int = 4
    backoff_base: float = 0.001
    backoff_factor: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise StorageError("retry policy needs max_attempts >= 1")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise StorageError(
                "retry backoff needs base >= 0 and factor >= 1"
            )

    def backoff_seconds(self, retry_number: int) -> float:
        """Deterministic backoff before the ``retry_number``-th retry
        (1-based)."""
        return self.backoff_base * self.backoff_factor ** (retry_number - 1)


@dataclass
class FaultStats:
    """Counters kept by a :class:`~repro.storage.pages.PageManager`.

    ``retries_total`` counts re-attempts actually performed; with
    every fault eventually recovered it equals the number of failed
    attempts (one retry per detected transient or corruption).
    """

    retries_total: int = 0
    transient_faults_total: int = 0
    corruptions_total: int = 0
    latency_events_total: int = 0
    latency_seconds_total: float = 0.0
    backoff_seconds_total: float = 0.0
    reads_failed_total: int = 0  # reads that exhausted the policy

    def as_dict(self) -> dict:
        return {
            "retries_total": self.retries_total,
            "transient_faults_total": self.transient_faults_total,
            "corruptions_total": self.corruptions_total,
            "latency_events_total": self.latency_events_total,
            "latency_seconds_total": self.latency_seconds_total,
            "backoff_seconds_total": self.backoff_seconds_total,
            "reads_failed_total": self.reads_failed_total,
        }


class _TransientFault(Exception):
    """Internal marker raised by the injector for one failed attempt
    (converted to PageReadError once retries are exhausted)."""


class FaultInjector:
    """Seeded fault schedule for the simulated disk.

    Parameters
    ----------
    seed:
        Seed of the private RNG — the whole schedule is a
        deterministic function of the seed and the sequence of read
        attempts.
    transient_rate, corrupt_rate, latency_rate:
        Independent per-attempt probabilities of each fault kind (a
        transient draw wins over a corruption draw; latency is
        orthogonal and can accompany a successful read).
    latency_seconds:
        Simulated extra seconds added by one latency spike.
    max_faults:
        Optional hard cap on injected transient+corrupt faults (keeps
        worst-case retry storms bounded in stress tests).

    Thread safety: draws take the injector lock, so worker threads
    hammering one disk see a consistent (if interleaving-dependent)
    schedule, and the log/counters never tear.
    """

    def __init__(
        self,
        seed: int = 0,
        transient_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency_seconds: float = 0.05,
        max_faults: int | None = None,
    ):
        for name, rate in (
            ("transient_rate", transient_rate),
            ("corrupt_rate", corrupt_rate),
            ("latency_rate", latency_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise StorageError(f"{name} must be in [0, 1], got {rate}")
        self.transient_rate = transient_rate
        self.corrupt_rate = corrupt_rate
        self.latency_rate = latency_rate
        self.latency_seconds = latency_seconds
        self.max_faults = max_faults
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._sequence = 0
        self.log: list[FaultEvent] = []
        self.counts: dict[str, int] = {
            FAULT_TRANSIENT: 0,
            FAULT_CORRUPT: 0,
            FAULT_LATENCY: 0,
        }

    # ------------------------------------------------------------------

    def _record(self, kind: str, page_id: int, detail: float = 0.0) -> None:
        event = FaultEvent(
            kind=kind, page_id=page_id, sequence=self._sequence, detail=detail
        )
        self._sequence += 1
        self.log.append(event)
        self.counts[kind] += 1

    def _budget_left(self) -> bool:
        if self.max_faults is None:
            return True
        hard = self.counts[FAULT_TRANSIENT] + self.counts[FAULT_CORRUPT]
        return hard < self.max_faults

    def on_read(self, page_id: int, data: bytes) -> tuple[bytes, float]:
        """One physical read attempt: returns (payload, extra seconds).

        Raises the internal transient marker when this attempt fails;
        may return a corrupted payload (the caller's CRC check detects
        it); may report simulated latency alongside a clean payload.
        """
        with self._lock:
            latency = 0.0
            if self.latency_rate and self._rng.random() < self.latency_rate:
                latency = self.latency_seconds
                self._record(FAULT_LATENCY, page_id, detail=latency)
            if self._budget_left():
                if (
                    self.transient_rate
                    and self._rng.random() < self.transient_rate
                ):
                    self._record(FAULT_TRANSIENT, page_id)
                    raise _TransientFault(
                        f"injected transient fault on page {page_id}"
                    )
                if (
                    self.corrupt_rate
                    and self._rng.random() < self.corrupt_rate
                ):
                    self._record(FAULT_CORRUPT, page_id)
                    return self._corrupt(data), latency
            return data, latency

    def _corrupt(self, data: bytes) -> bytes:
        """Flip one byte at a schedule-chosen offset (empty pages get
        a phantom byte appended so the corruption is still visible)."""
        if not data:
            return b"\xff"
        index = self._rng.randrange(len(data))
        flipped = bytes([data[index] ^ 0xFF])
        return data[:index] + flipped + data[index + 1:]

    # ------------------------------------------------------------------

    @property
    def injected_total(self) -> int:
        """Transient + corruption faults injected so far."""
        return self.counts[FAULT_TRANSIENT] + self.counts[FAULT_CORRUPT]

    def summary(self) -> dict:
        """JSON-ready injector state (for bench reports)."""
        with self._lock:
            return {
                "transient": self.counts[FAULT_TRANSIENT],
                "corrupt": self.counts[FAULT_CORRUPT],
                "latency": self.counts[FAULT_LATENCY],
                "latency_seconds": sum(
                    e.detail for e in self.log if e.kind == FAULT_LATENCY
                ),
                "events": len(self.log),
            }
