"""Embedding arbitrary surface points as query sources.

"When an object point is not a vertex in the surface model, an
embedding process is used to add the point as a new vertex in the
surface model by connecting it to the vertices of the same triangular
facet." (paper, §3.2)

For a height-field facet the connecting segments lie inside the
(planar) facet, hence on the surface — so for any target t

    dS(p, t)  <=  |p v|  +  dS(v, t)        for each facet vertex v

and every anchor-based upper bound stays a genuine path length.
Lower bounds need no embedding at all: the MSDN takes raw 3D points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError
from repro.geometry.triangle import barycentric_2d

_SNAP_EPS = 1e-9


@dataclass(frozen=True)
class EmbeddedQuery:
    """An on-surface query point expressed through facet anchors.

    ``anchors`` holds ``(vertex_id, offset)`` pairs where each offset
    is the in-facet straight-line distance from the point to that
    vertex.
    """

    position: tuple  # (x, y, z) on the surface
    anchors: tuple  # ((vertex, offset), ...)

    @property
    def xy(self) -> tuple:
        return self.position[:2]


def embed_point(mesh, x: float, y: float):
    """Embed (x, y) on the surface.

    Returns a plain vertex id when the point coincides with a mesh
    vertex, otherwise an :class:`EmbeddedQuery` anchored at the three
    vertices of the containing facet.
    """
    fi = mesh.locate_face(x, y)
    face = mesh.faces[fi]
    a, b, c = mesh.face_points(fi)
    wa, wb, wc = barycentric_2d((x, y), a, b, c)
    z = float(wa * a[2] + wb * b[2] + wc * c[2])
    p = np.array([x, y, z])
    anchors = []
    for vid in face:
        offset = float(np.linalg.norm(p - mesh.vertices[int(vid)]))
        if offset <= _SNAP_EPS:
            return int(vid)
        anchors.append((int(vid), offset))
    return EmbeddedQuery(position=tuple(p), anchors=tuple(anchors))


def source_of(mesh, query) -> tuple[np.ndarray, tuple]:
    """Normalize a query (vertex id or EmbeddedQuery) into
    ``(position, anchors)``."""
    if isinstance(query, EmbeddedQuery):
        return np.asarray(query.position, dtype=float), query.anchors
    if not 0 <= int(query) <= mesh.num_vertices - 1:
        raise QueryError(f"query vertex {query} out of range")
    vid = int(query)
    return mesh.vertices[vid], ((vid, 0.0),)
