"""Network k-NN baselines from the paper's related work (§2.1).

The paper positions sk-NN against *network* k-NN processing on road
networks and explains why those techniques don't transfer: a surface
mesh "is a much more complex network than road networks", and network
distance ``dN`` (along edges) systematically overestimates the true
surface distance ``dS`` (paths may cut across faces).  To make that
argument concrete, this module implements the two classic algorithms
over the mesh edge network:

* **INE** — Incremental Network Expansion [Papadias et al., VLDB'03]:
  one Dijkstra wavefront from the query; objects are reported in the
  order the expansion settles their vertices.
* **IER** — Incremental Euclidean Restriction [ibid., §2.1's
  description]: fetch candidates in Euclidean order via the R-tree's
  distance-browsing iterator, compute their network distances, and
  stop once the next Euclidean distance exceeds the current k-th
  network distance.

Both return ``dN``-ranked answers.  ``benchmarks/bench_related_work``
measures how often that ranking disagrees with true surface k-NN —
the quantified version of the paper's motivation.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.geodesic.csr import csr_from_adjacency, dijkstra_csr, kernel_mode
from repro.geodesic.dijkstra import dijkstra
from repro.spatial.rtree import RTree


def ine_knn(mesh, objects, query_vertex: int, k: int) -> list[tuple[int, float]]:
    """Incremental network expansion over the mesh edge network.

    Returns ``[(object_id, dN), ...]`` ascending by network distance.
    """
    if k < 1:
        raise QueryError("k must be >= 1")
    if k > len(objects):
        raise QueryError(f"k={k} exceeds {len(objects)} objects")
    vertex_to_objects: dict[int, list[int]] = {}
    for obj in range(len(objects)):
        vertex_to_objects.setdefault(objects.vertex_of(obj), []).append(obj)
    adj = mesh.edge_network()

    # Expand until k objects are settled — the paper's
    # expansion-until-found behaviour, on flat CSR arrays by default.
    import heapq

    heap: list[tuple[float, int]] = [(0.0, query_vertex)]
    found: list[tuple[int, float]] = []
    if kernel_mode() != "reference":
        indptr, indices, weights = csr_from_adjacency(adj).lists()
        visited = bytearray(len(adj))
        while heap and len(found) < k:
            d, u = heapq.heappop(heap)
            if visited[u]:
                continue
            visited[u] = 1
            for obj in vertex_to_objects.get(u, ()):
                found.append((obj, d))
            for e in range(indptr[u], indptr[u + 1]):
                v = indices[e]
                if not visited[v]:
                    heapq.heappush(heap, (d + weights[e], v))
    else:
        dist: dict[int, float] = {}
        while heap and len(found) < k:
            d, u = heapq.heappop(heap)
            if u in dist:
                continue
            dist[u] = d
            for obj in vertex_to_objects.get(u, ()):
                found.append((obj, d))
            for v, w in adj[u]:
                if v not in dist:
                    heapq.heappush(heap, (d + w, v))
    found.sort(key=lambda t: (t[1], t[0]))
    return found[:k]


def ier_knn(mesh, objects, query_vertex: int, k: int) -> list[tuple[int, float]]:
    """Incremental Euclidean restriction (the paper's §2.1 recipe).

    "A k-NN query is performed using the Euclidean distance and the k
    retrieved points are sorted ... by their network distances ...
    this process continues until there is no such object p' can be
    found."
    """
    if k < 1:
        raise QueryError("k must be >= 1")
    if k > len(objects):
        raise QueryError(f"k={k} exceeds {len(objects)} objects")
    q_pos = mesh.vertices[query_vertex]
    tree = RTree(max_entries=16)
    for obj in range(len(objects)):
        tree.insert_point(objects.position_of(obj)[:2], obj)

    adj = mesh.edge_network()
    # One growing single-source search would be cheating in IER's
    # favour; the algorithm recomputes per candidate (bounded by the
    # current kth network distance, its own optimisation).  The CSR
    # form is compiled once and reused by every per-candidate search.
    csr = csr_from_adjacency(adj) if kernel_mode() != "reference" else None
    best: list[tuple[float, int]] = []  # (dN, obj) heap-ish list

    def network_distance(obj: int, cap: float | None) -> float | None:
        target = objects.vertex_of(obj)
        if csr is not None:
            result = dijkstra_csr(csr, query_vertex, targets={target}, max_dist=cap)
        else:
            result = dijkstra(adj, query_vertex, targets={target}, max_dist=cap)
        return result.get(target)

    browser = tree.nearest_iter(q_pos[:2])
    for euclid_xy, obj in browser:
        kth = best[k - 1][0] if len(best) >= k else float("inf")
        if len(best) >= k and euclid_xy > kth:
            break  # dN >= dE >= dE_xy > kth for everything farther
        dn = network_distance(obj, None if kth == float("inf") else kth * 1.0000001)
        if dn is None:
            continue
        best.append((dn, obj))
        best.sort()
        del best[k * 2 :]
    return [(obj, dn) for dn, obj in best[:k]]
