"""Obstacle-constrained surface k-NN — the paper's future-work
extension (§6: "sk-NN query with obstacle constraints, which can be
found in many real-life sk-NN applications, such as energy
consumption and vehicle stability considerations for rovers, and
general traversability constraints").

Implementation: surface distances are computed on the Steiner pathnet
with untraversable faces removed, so every reported distance is the
length of a genuine path avoiding the obstacles.  A single Dijkstra
from the query serves all candidates.  Helpers derive forbidden face
sets from slope limits — the rover-stability constraint the paper
names.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.geodesic.csr import graph_dijkstra
from repro.geodesic.pathnet import build_pathnet, vertex_key


def steep_faces(mesh, max_slope_deg: float) -> set[int]:
    """Face ids whose slope exceeds ``max_slope_deg`` degrees."""
    if not 0.0 < max_slope_deg < 90.0:
        raise QueryError("max_slope_deg must be in (0, 90)")
    v = mesh.vertices
    f = mesh.faces
    normal = np.cross(v[f[:, 1]] - v[f[:, 0]], v[f[:, 2]] - v[f[:, 0]])
    length = np.sqrt(np.sum(normal * normal, axis=1))
    length[length == 0.0] = 1.0
    cos_slope = np.abs(normal[:, 2]) / length
    slopes = np.degrees(np.arccos(np.clip(cos_slope, -1.0, 1.0)))
    return {int(fi) for fi in np.nonzero(slopes > max_slope_deg)[0]}


def region_faces(mesh, region) -> set[int]:
    """Face ids whose xy-MBR intersects a forbidden 2D region."""
    return {int(fi) for fi in mesh.submesh_faces(region)}


def obstacle_knn(
    mesh,
    objects,
    query_vertex: int,
    k: int,
    forbidden_faces,
    steiner_per_edge: int = 1,
) -> list[tuple[int, float]]:
    """The k nearest objects by obstacle-avoiding surface distance.

    Returns ``[(object_id, distance), ...]`` ascending; objects
    unreachable without crossing an obstacle are excluded, so fewer
    than k entries may come back (an impassable ring around the query
    yields an empty result rather than an invalid one).
    """
    if k < 1:
        raise QueryError("k must be >= 1")
    graph = build_pathnet(
        mesh, steiner_per_edge=steiner_per_edge, forbidden_faces=forbidden_faces
    )
    src_key = vertex_key(query_vertex)
    if src_key not in graph:
        return []  # the query itself sits inside the obstacle region
    targets = {}
    for obj in range(len(objects)):
        key = vertex_key(objects.vertex_of(obj))
        if key in graph:
            targets.setdefault(graph.node_id(key), []).append(obj)
    dist = graph_dijkstra(graph, graph.node_id(src_key), targets=set(targets))
    reached = [
        (obj, d)
        for node, d in dist.items()
        if node in targets
        for obj in targets[node]
    ]
    reached.sort(key=lambda t: (t[1], t[0]))
    return reached[:k]
