"""Distance intervals and VA-file style candidate classification.

MR3 never computes exact surface distances; each candidate carries an
interval ``[lb, ub]`` with ``lb <= dS <= ub`` that tightens
monotonically as resolution increases (lb by running max, ub by
running min).  Classification follows the ranking rule the paper
borrows from the VA-file [Weber et al., VLDB'98]: with candidates
ordered by upper bound, the search may stop once
``ub(p_k) <= lb(p_{k+1})``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.errors import QueryError


@dataclass
class DistanceInterval:
    """A monotonically tightening surface-distance interval."""

    lb: float = 0.0
    ub: float = float("inf")

    def refine_lb(self, value: float) -> None:
        """Raise the lower bound (running max keeps monotonicity)."""
        if value > self.lb:
            self.lb = value
        self._check()

    def refine_ub(self, value: float) -> None:
        """Lower the upper bound (running min keeps monotonicity)."""
        if value < self.ub:
            self.ub = value
        self._check()

    def _check(self) -> None:
        # Bounds may cross by numerical slack only.
        if self.lb > self.ub * (1.0 + 1e-9) + 1e-9:
            raise QueryError(
                f"distance interval inverted: lb={self.lb} > ub={self.ub}"
            )

    @property
    def width(self) -> float:
        return self.ub - self.lb

    @property
    def accuracy(self) -> float:
        """The paper's ε = lb / ub accuracy measure (0 when ub is
        still infinite)."""
        if self.ub == float("inf") or self.ub == 0.0:
            return 0.0
        return self.lb / self.ub

    def certainly_before(self, other: "DistanceInterval") -> bool:
        """Whether this distance is certainly <= the other's."""
        return self.ub <= other.lb

    def overlaps(self, other: "DistanceInterval") -> bool:
        return not (
            self.certainly_before(other) or other.certainly_before(self)
        )


@dataclass
class Candidate:
    """One object being ranked against the query point."""

    object_id: int
    vertex: int
    position: tuple
    interval: DistanceInterval = field(default_factory=DistanceInterval)
    # Estimation state carried across iterations:
    ub_path_keys: list = field(default_factory=list)
    lb_path_keys: list = field(default_factory=list)
    lb_path_resolution: float | None = None

    @property
    def lb(self) -> float:
        return self.interval.lb

    @property
    def ub(self) -> float:
        return self.interval.ub


@dataclass
class Classification:
    """Outcome of one classification pass."""

    done: bool
    winners: list  # Candidates certainly within the top k
    active: list  # Candidates still ambiguous
    rejected: list  # Candidates certainly outside the top k
    kth_ub: float  # Upper bound of the k-th candidate (by ub order)
    kth_lb: float = 0.0  # Lower bound of that same candidate

    @property
    def kth_accuracy(self) -> float:
        """ε = lb/ub of the k-th candidate (0 while ub is infinite)."""
        if self.kth_ub == float("inf") or self.kth_ub == 0.0:
            return 0.0
        return self.kth_lb / self.kth_ub


def classify_candidates(candidates: list, k: int) -> Classification:
    """Split candidates into certain winners / ambiguous / rejected.

    With candidates sorted by ub, let T be the k-th smallest ub
    (infinite if fewer than k candidates):

    * a candidate with ``lb >= T`` cannot beat the current k best —
      certainly rejected;
    * a candidate p is a certain winner when at most k candidates
      (including p) have ``lb <= ub(p)`` — no k others can displace
      it;
    * the query is *done* when ``ub(p_k) <= lb(p_{k+1})`` in ub
      order, the paper's termination condition.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    by_ub = sorted(candidates, key=lambda c: (c.ub, c.object_id))
    if len(by_ub) <= k:
        return Classification(
            done=True,
            winners=list(by_ub),
            active=[],
            rejected=[],
            kth_ub=by_ub[-1].ub if by_ub else float("inf"),
            kth_lb=by_ub[-1].lb if by_ub else 0.0,
        )
    kth_ub = by_ub[k - 1].ub
    rest_min_lb = min(c.lb for c in by_ub[k:])
    done = kth_ub <= rest_min_lb
    if done:
        # Exactly the first k by ub win; the sorted-lb/bisect pass
        # below is only needed to split an undecided set.
        return Classification(
            done=True,
            winners=by_ub[:k],
            active=[],
            rejected=by_ub[k:],
            kth_ub=kth_ub,
            kth_lb=by_ub[k - 1].lb,
        )

    lbs = sorted(c.lb for c in candidates)
    winners: list = []
    active: list = []
    rejected: list = []
    for i, cand in enumerate(by_ub):
        if i >= k and cand.lb >= kth_ub:
            rejected.append(cand)
            continue
        # cand certainly wins when at most k candidates (itself
        # included) could have a distance <= its upper bound.
        better_or_equal = bisect.bisect_right(lbs, cand.ub)
        if better_or_equal <= k:
            winners.append(cand)
        else:
            active.append(cand)
    return Classification(
        done=done,
        winners=winners,
        active=active,
        rejected=rejected,
        kth_ub=kth_ub,
        kth_lb=by_ub[k - 1].lb,
    )
