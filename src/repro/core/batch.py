"""Concurrent batch query execution with shared bound caching.

Road-network k-NN experience says simple, cache-friendly batch
execution beats clever per-query indexing at scale: nearby queries in
a batch repeat most of each other's work.  For MR3 that repeated work
is the per-level bound estimation — DMTM network extractions and
Dijkstra passes for upper bounds, MSDN plane sweeps for lower bounds,
Kanai-Suzuki polishing for the stragglers.  All of it is a *pure
function* of (structures, source, target, resolution, region), which
makes it safely memoizable across queries.

Three pieces cooperate:

* :class:`BoundCache` — a process-wide, thread-safe LRU memo of those
  pure computations.  The transparency contract: a cache hit returns
  exactly the value the miss path would compute, so reuse changes CPU
  cost only — never results, bounds, or logical page accounting
  (page charging happens per integrated region *before* candidates
  consult the cache).  ``BatchQueryExecutor(workers=1)`` is therefore
  bit-identical to a plain ``engine.query`` loop.
* a shared :class:`~repro.storage.pages.BufferPool` — the engines'
  page managers already cache through a pool object; the executor's
  engine can point at the process-wide pool
  (:func:`repro.storage.pages.shared_buffer_pool`).
* :class:`~repro.storage.stats.ThreadLocalIOStatistics` — installed
  on the engine by the executor so each worker accounts page I/O into
  its own counters; per-query deltas stay exact under concurrency and
  still sum to the global aggregate.

Example
-------
>>> from repro import bearhead_like
>>> from repro.core import SurfaceKNNEngine
>>> from repro.core.batch import BatchQueryExecutor
>>> engine = SurfaceKNNEngine.from_dem(bearhead_like(size=17), density=8)
>>> executor = BatchQueryExecutor(engine, workers=4)
>>> report = executor.run([(3, 2), (40, 3), (3, 2)])
>>> [len(r.object_ids) for r in report.results]
[2, 3, 2]
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.budget import QueryBudget
from repro.errors import QueryError, StorageError, SurfKnnError
from repro.obs.context import ObsContext, active_profiler, current
from repro.obs.metrics import get_registry
from repro.obs.tracing import Tracer
from repro.storage.stats import ThreadLocalIOStatistics

_MISSING = object()


class BoundCache:
    """Thread-safe LRU memo of deterministic bound computations.

    Keys are tuples built by the ranker from the query anchors, the
    target vertex, the resolution and the (hashable) search region;
    values are whatever the underlying computation produced,
    ``None`` included (a "no path inside this region" outcome is as
    cacheable as a bound).  Extracted networks are kept in a second,
    smaller LRU because entries are whole graphs.

    Because every cached value equals the value the computation would
    return for the same key, sharing one cache across queries — or
    across threads, under this cache's lock — cannot change any
    query's answer, bounds, or logical read counts; it only removes
    repeated CPU work.  That is what keeps batch execution
    bit-identical to sequential execution.
    """

    def __init__(self, max_entries: int = 200_000, max_networks: int = 64):
        if max_entries < 1 or max_networks < 1:
            raise QueryError("cache capacities must be >= 1")
        self.max_entries = max_entries
        self.max_networks = max_networks
        self._lock = threading.RLock()
        self._values: OrderedDict = OrderedDict()
        self._networks: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.network_hits = 0
        self.network_misses = 0

    def lookup(self, key) -> tuple[bool, object]:
        """(found, value); value may legitimately be None."""
        profiler = active_profiler()
        with self._lock:
            value = self._values.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                profiler.count("bound_cache_misses", 1)
                return False, None
            self._values.move_to_end(key)
            self.hits += 1
            profiler.count("bound_cache_hits", 1)
            return True, value

    def store(self, key, value) -> None:
        with self._lock:
            self._values[key] = value
            self._values.move_to_end(key)
            while len(self._values) > self.max_entries:
                self._values.popitem(last=False)

    def lookup_network(self, key) -> tuple[bool, object]:
        profiler = active_profiler()
        with self._lock:
            value = self._networks.get(key, _MISSING)
            if value is _MISSING:
                self.network_misses += 1
                profiler.count("network_cache_misses", 1)
                return False, None
            self._networks.move_to_end(key)
            self.network_hits += 1
            profiler.count("network_cache_hits", 1)
            return True, value

    def store_network(self, key, network) -> None:
        with self._lock:
            self._networks[key] = network
            self._networks.move_to_end(key)
            while len(self._networks) > self.max_networks:
                self._networks.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def stats(self) -> dict:
        """JSON-ready counters (for bench reports)."""
        with self._lock:
            return {
                "entries": len(self._values),
                "networks": len(self._networks),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
                "network_hits": self.network_hits,
                "network_misses": self.network_misses,
            }

    def clear(self) -> None:
        with self._lock:
            self._values.clear()
            self._networks.clear()


_shared_bound_cache: BoundCache | None = None
_shared_bound_cache_lock = threading.Lock()


def shared_bound_cache() -> BoundCache:
    """The process-wide bound cache, created on first use."""
    global _shared_bound_cache
    with _shared_bound_cache_lock:
        if _shared_bound_cache is None:
            _shared_bound_cache = BoundCache()
        return _shared_bound_cache


@dataclass(frozen=True)
class BatchQuery:
    """One sk-NN query in a batch.

    ``budget`` optionally caps this query's resources
    (:class:`~repro.core.budget.QueryBudget`); it overrides the
    executor's batch-wide default when both are given.
    """

    vertex: int
    k: int
    method: str = "mr3"
    step_length: int = 1
    budget: QueryBudget | None = None

    @classmethod
    def of(cls, spec) -> "BatchQuery":
        """Coerce ``(vertex, k)`` tuples / dicts / BatchQuery."""
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, dict):
            return cls(**spec)
        try:
            vertex, k = spec
        except (TypeError, ValueError):
            raise QueryError(
                f"batch query spec {spec!r} is not a BatchQuery, "
                "(vertex, k) pair or kwargs dict"
            ) from None
        return cls(vertex=int(vertex), k=int(k))


@dataclass(frozen=True)
class BatchError:
    """One failed (or unadmitted) query in a batch.

    The batch never aborts on a member failure: the slot in
    ``BatchReport.results`` holds ``None`` and this record explains
    why.  ``skipped`` marks queries the circuit breaker refused to
    admit (they never ran).
    """

    index: int
    vertex: int
    k: int
    kind: str  # exception class name, or "CircuitOpen" for skipped
    message: str
    skipped: bool = False


class CircuitBreaker:
    """Stops admitting batch queries after ``threshold`` *consecutive*
    storage failures, with half-open recovery probes.

    A storage failure that survives the page manager's retries means
    the simulated disk is persistently unhealthy; hammering it with
    the rest of the batch just burns the retry budget.  Any success
    closes the circuit again (failures must be consecutive).

    Recovery: an open circuit is not forever.  After ``cooldown``
    refused admissions the breaker goes *half-open* and admits exactly
    one probe query.  If the probe succeeds the circuit closes (the
    disk — or the quarantine's salvage of it — recovered); if it fails
    the circuit re-opens for another cooldown.  The cooldown is
    counted in denials, not wall clock, so behaviour is deterministic
    under test.  All transitions take the breaker lock, so concurrent
    workers see a consistent state.
    """

    def __init__(self, threshold: int = 8, registry=None, cooldown: int = 16):
        if threshold < 1:
            raise QueryError(f"breaker threshold must be >= 1, got {threshold}")
        if cooldown < 1:
            raise QueryError(f"breaker cooldown must be >= 1, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        # Trip counters land in this registry (the executor passes its
        # ObsContext's); None falls back to the active context's.
        self.registry = registry
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._denials_since_open = 0
        self._half_open = False
        self.trips = 0  # times the circuit went from closed to open
        self.recoveries = 0  # half-open probes that closed the circuit
        self.reopens = 0  # half-open probes that failed

    def _registry(self):
        return self.registry if self.registry is not None else get_registry()

    @property
    def open(self) -> bool:
        with self._lock:
            return (
                self._consecutive_failures >= self.threshold
                and not self._half_open
            )

    @property
    def half_open(self) -> bool:
        with self._lock:
            return self._half_open

    def allow(self) -> bool:
        """May the next query run?

        False while the circuit is open — except that every
        ``cooldown``-th denial flips the breaker half-open and grants
        one probe admission (True).
        """
        with self._lock:
            if self._consecutive_failures < self.threshold:
                return True
            if self._half_open:
                # One probe is already in flight; hold the rest.
                return False
            self._denials_since_open += 1
            if self._denials_since_open >= self.cooldown:
                self._half_open = True
                self._denials_since_open = 0
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            was_half_open = self._half_open
            self._consecutive_failures = 0
            self._denials_since_open = 0
            self._half_open = False
            if was_half_open:
                self.recoveries += 1
                self._registry().counter(
                    "batch.circuit_recoveries_total"
                ).add(1)

    def record_failure(self) -> None:
        with self._lock:
            if self._half_open:
                # Failed probe: re-open for another cooldown.
                self._half_open = False
                self._denials_since_open = 0
                self.reopens += 1
                self._consecutive_failures = max(
                    self._consecutive_failures + 1, self.threshold
                )
                self._registry().counter("batch.circuit_reopens_total").add(1)
                return
            self._consecutive_failures += 1
            if self._consecutive_failures == self.threshold:
                self.trips += 1
                self._registry().counter("batch.circuit_trips_total").add(1)


@dataclass
class BatchReport:
    """Outcome of one executor run.

    ``results`` is in submission order regardless of worker
    interleaving; ``latencies`` are per-query wall seconds.  A query
    that failed (or was refused by the circuit breaker) leaves
    ``None`` in its ``results`` slot and a :class:`BatchError` in
    ``errors`` — per-query faults are isolated, the batch always
    completes.
    """

    results: list
    latencies: list[float]
    wall_seconds: float
    workers: int
    cache_stats: dict = field(default_factory=dict)
    errors: list = field(default_factory=list)
    # Engine health snapshot (repro.core.health.EngineHealth.as_dict)
    # taken when the batch finished; {} for engines without storage.
    engine_health: dict = field(default_factory=dict)

    @property
    def ok_results(self) -> list:
        """The successful results only (failed slots filtered out)."""
        return [r for r in self.results if r is not None]

    @property
    def throughput_qps(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return len(self.results) / self.wall_seconds

    def latency_quantile(self, q: float) -> float:
        """Exact empirical q-quantile of the per-query latencies."""
        if not 0.0 <= q <= 1.0:
            raise QueryError(f"quantile must be in [0, 1], got {q}")
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def summary(self) -> dict:
        """JSON-ready roll-up (throughput, latency percentiles, I/O)."""
        ok = self.ok_results
        return {
            "queries": len(self.results),
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "latency_p50": self.latency_quantile(0.50),
            "latency_p95": self.latency_quantile(0.95),
            "latency_p99": self.latency_quantile(0.99),
            "logical_reads": sum(r.metrics.logical_reads for r in ok),
            "pages_accessed": sum(r.metrics.pages_accessed for r in ok),
            "bound_cache": dict(self.cache_stats),
            "failed": sum(1 for e in self.errors if not e.skipped),
            "skipped": sum(1 for e in self.errors if e.skipped),
            "degraded": sum(1 for r in ok if r.degraded),
            "degraded_budget": sum(
                1 for r in ok
                if r.degraded and getattr(r, "degraded_reason", None) == "budget"
            ),
            "degraded_storage": sum(
                1 for r in ok
                if r.degraded and getattr(r, "degraded_reason", None) == "storage"
            ),
            "engine_health": dict(self.engine_health),
        }


class BatchQueryExecutor:
    """Runs many sk-NN queries concurrently over one engine.

    Parameters
    ----------
    engine:
        A built :class:`~repro.core.engine.SurfaceKNNEngine`.  On
        construction the executor installs a
        :class:`~repro.storage.stats.ThreadLocalIOStatistics` router
        on the engine (idempotent), so worker threads account page
        I/O without cross-talk; the engine keeps working normally for
        sequential use afterwards.
    workers:
        Thread-pool width.  ``workers=1`` executes inline and is
        bit-identical to calling ``engine.query`` in a loop.
    bound_cache:
        Shared :class:`BoundCache`; default a fresh private cache.
        Pass :func:`shared_bound_cache` to share across executors, or
        ``None`` explicitly via ``share_bounds=False`` to disable.
    share_bounds:
        Disable bound sharing entirely when False.
    tracing:
        When True every query runs under its own
        :class:`~repro.obs.tracing.Tracer`, so span trees never mix
        between concurrent queries (``result.root_span`` per query).
    cold_cache:
        Forwarded to ``engine.query`` (default True, the paper's
        per-query cold-start measurement).
    budget:
        Batch-wide default :class:`~repro.core.budget.QueryBudget`
        applied to every query (a spec's own ``budget`` wins).
    circuit_threshold:
        Consecutive storage failures before the circuit breaker stops
        admitting queries (remaining specs are reported as skipped,
        not run).  The breaker only reacts to
        :class:`~repro.errors.StorageError` — query-shaped failures
        (bad k etc.) are isolated but don't open the circuit.
    circuit_cooldown:
        Refused admissions before an open breaker goes half-open and
        admits one probe query (see :class:`CircuitBreaker`).
    obs:
        Batch-level :class:`~repro.obs.ObsContext`.  Every query runs
        under a fresh per-query **child** context (so concurrent
        queries never share mutable telemetry), which is merged back
        into this context when the query finishes — counters add,
        profiles aggregate.  Defaults to the context active at
        construction time (the process default context when none is
        active, preserving the old into-the-global-registry
        behaviour).
        Pass a profiling context (``ObsContext(profiling=True)``) to
        collect per-query phase profiles for the whole batch.
    """

    def __init__(
        self,
        engine,
        workers: int = 1,
        bound_cache: BoundCache | None = None,
        share_bounds: bool = True,
        tracing: bool = False,
        cold_cache: bool = True,
        budget: QueryBudget | None = None,
        circuit_threshold: int = 8,
        circuit_cooldown: int = 16,
        obs: ObsContext | None = None,
    ):
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        self.engine = engine
        self.workers = workers
        self.tracing = tracing
        self.cold_cache = cold_cache
        self.budget = budget
        self.obs = obs if obs is not None else current()
        self.circuit_breaker = CircuitBreaker(
            circuit_threshold,
            registry=self.obs.registry,
            cooldown=circuit_cooldown,
        )
        health = getattr(engine, "health", None)
        if health is not None:
            health.attach_breaker(self.circuit_breaker)
        if not share_bounds:
            self.bound_cache = None
        else:
            self.bound_cache = (
                bound_cache if bound_cache is not None else BoundCache()
            )
        self._install_thread_local_stats()

    def _install_thread_local_stats(self) -> None:
        """Swap the engine's IOStatistics for a per-thread router."""
        if isinstance(self.engine.stats, ThreadLocalIOStatistics):
            return
        router = ThreadLocalIOStatistics()
        self.engine.stats = router
        if self.engine.pages is not None:
            self.engine.pages.stats = router

    # ------------------------------------------------------------------

    def _run_one(self, item):
        """Run one spec with fault isolation.

        Returns ``(result_or_None, latency, BatchError_or_None)``.  A
        library failure (:class:`~repro.errors.SurfKnnError`) becomes
        an error record instead of poisoning the pool; programming
        errors still propagate.  Storage failures feed the circuit
        breaker; once it opens, remaining specs are refused without
        running.
        """
        index, spec = item
        breaker = self.circuit_breaker
        # Breaker first: allow() may grant a half-open recovery probe,
        # which must run even while the health verdict says FAILED
        # (the probe is how the verdict gets revised).
        if not breaker.allow():
            return None, 0.0, BatchError(
                index=index, vertex=spec.vertex, k=spec.k,
                kind="CircuitOpen",
                message=(
                    f"circuit breaker open after {breaker.threshold} "
                    "consecutive storage failures; query not admitted"
                ),
                skipped=True,
            )
        health = getattr(self.engine, "health", None)
        if health is not None:
            state = health.state()
            if state == "failed" and health.cause_kind != "breaker":
                self.obs.registry.counter(
                    "batch.health_rejections_total"
                ).add(1)
                return None, 0.0, BatchError(
                    index=index, vertex=spec.vertex, k=spec.k,
                    kind="EngineUnhealthy",
                    message=(
                        f"engine health is failed ({health.cause}); "
                        "query not admitted"
                    ),
                    skipped=True,
                )
            if state == "degraded":
                self.obs.registry.counter(
                    "batch.degraded_admissions_total"
                ).add(1)
        tracer = Tracer() if self.tracing else None
        # Each query gets its own child context: concurrent queries
        # never share mutable telemetry, and the finished child is
        # merged back into the batch context below (counters add,
        # profiles aggregate) — so batch totals still reconcile.
        ctx = self.obs.child(f"q{index}")
        start = time.perf_counter()
        try:
            result = self.engine.query(
                spec.vertex,
                spec.k,
                method=spec.method,
                step_length=spec.step_length,
                cold_cache=self.cold_cache,
                tracer=tracer,
                obs=ctx,
                bound_cache=self.bound_cache,
                budget=spec.budget if spec.budget is not None else self.budget,
            )
        except SurfKnnError as exc:
            latency = time.perf_counter() - start
            self.obs.absorb(ctx)
            if isinstance(exc, StorageError):
                breaker.record_failure()
            self.obs.registry.counter("batch.query_failures_total").add(1)
            return None, latency, BatchError(
                index=index, vertex=spec.vertex, k=spec.k,
                kind=type(exc).__name__, message=str(exc),
            )
        latency = time.perf_counter() - start
        self.obs.absorb(ctx)
        breaker.record_success()
        return result, latency, None

    def run(self, queries) -> BatchReport:
        """Execute the batch; results come back in submission order."""
        specs = [BatchQuery.of(q) for q in queries]
        start = time.perf_counter()
        items = list(enumerate(specs))
        if self.workers == 1 or len(specs) <= 1:
            outcomes = [self._run_one(item) for item in items]
        else:
            with ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="sknn-batch"
            ) as pool:
                outcomes = list(pool.map(self._run_one, items))
        wall = time.perf_counter() - start
        health = getattr(self.engine, "health", None)
        return BatchReport(
            results=[r for r, _t, _e in outcomes],
            latencies=[t for _r, t, _e in outcomes],
            wall_seconds=wall,
            workers=self.workers,
            cache_stats=(
                self.bound_cache.stats() if self.bound_cache is not None else {}
            ),
            errors=[e for _r, _t, e in outcomes if e is not None],
            engine_health=health.as_dict() if health is not None else {},
        )

    def run_vertices(self, vertices, k: int, **spec_kwargs) -> BatchReport:
        """Convenience: same ``k`` (and options) for many vertices."""
        return self.run(
            [BatchQuery(vertex=int(v), k=k, **spec_kwargs) for v in vertices]
        )
