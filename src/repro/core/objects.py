"""Object datasets on a terrain surface.

The paper's workload: "The object points are uniformly distributed on
the surface with varying object density 1 <= o <= 10" (objects per
km²).  Objects are snapped to mesh vertices — every surface point
within half an edge length of a vertex, which keeps distance
semantics exact without an embedding step — and indexed in 2D
(``Dxy``) by an R-tree for MR3's steps 1 and 3.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.spatial.rtree import RTree


class ObjectSet:
    """Objects on a terrain, with the 2D projection index ``Dxy``."""

    def __init__(self, mesh, vertex_ids):
        self.mesh = mesh
        vertex_ids = [int(v) for v in vertex_ids]
        if not vertex_ids:
            raise QueryError("an object set needs at least one object")
        if len(set(vertex_ids)) != len(vertex_ids):
            raise QueryError("object vertex ids must be distinct")
        for vid in vertex_ids:
            if not 0 <= vid < mesh.num_vertices:
                raise QueryError(f"object vertex {vid} out of range")
        self.vertex_ids = vertex_ids
        self.positions = mesh.vertices[vertex_ids]
        self._dxy = RTree(max_entries=16)
        for obj_id, pos in enumerate(self.positions):
            self._dxy.insert_point(pos[:2], obj_id)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def uniform(cls, mesh, density: float, seed: int = 0) -> "ObjectSet":
        """Uniform objects at ``density`` per km² (the paper's o).

        Samples xy positions uniformly over the terrain extent and
        snaps each to the nearest unused mesh vertex.
        """
        if density <= 0:
            raise QueryError(f"density must be positive, got {density}")
        bounds = mesh.xy_bounds()
        area_km2 = bounds.measure() / 1e6
        count = max(1, int(round(density * area_km2)))
        if count > mesh.num_vertices:
            raise QueryError(
                f"density {density}/km2 needs {count} objects but the mesh "
                f"has only {mesh.num_vertices} vertices"
            )
        rng = np.random.default_rng(seed)
        taken: set[int] = set()
        chosen: list[int] = []
        attempts = 0
        while len(chosen) < count and attempts < count * 50:
            attempts += 1
            x = rng.uniform(bounds.lo[0], bounds.hi[0])
            y = rng.uniform(bounds.lo[1], bounds.hi[1])
            vid = mesh.nearest_vertex((x, y))
            if vid not in taken:
                taken.add(vid)
                chosen.append(vid)
        if len(chosen) < count:
            # Fill deterministically from unused vertices.
            for vid in range(mesh.num_vertices):
                if vid not in taken:
                    taken.add(vid)
                    chosen.append(vid)
                    if len(chosen) == count:
                        break
        return cls(mesh, chosen)

    # ------------------------------------------------------------------
    # queries over Dxy
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.vertex_ids)

    @property
    def density(self) -> float:
        """Objects per km² of terrain extent."""
        return len(self) / (self.mesh.xy_bounds().measure() / 1e6)

    def knn_2d(self, point_xy, k: int) -> list[int]:
        """Step 1 of MR3: object ids of the k nearest xy-projections."""
        return [obj for _d, obj in self._dxy.knn(point_xy, k)]

    def range_2d(self, center_xy, radius: float) -> list[int]:
        """Step 3 of MR3: object ids within ``radius`` of the centre
        in the xy-plane."""
        return self._dxy.circle_query(center_xy, radius)

    def vertex_of(self, object_id: int) -> int:
        if not 0 <= object_id < len(self.vertex_ids):
            raise QueryError(f"object id {object_id} out of range")
        return self.vertex_ids[object_id]

    def position_of(self, object_id: int) -> np.ndarray:
        return self.positions[object_id]
