"""I/O region construction and integration.

"As there may have multiple candidate points to be considered at each
iteration, their I/O regions (for each candidate point, its I/O
region is the MBR of the search region) can be combined if they are
significantly overlapped (e.g., over 80 %) in order to reduce I/O
cost." (paper, §4.2)

:func:`integrate_io_regions` greedily merges candidate MBRs whose
overlap (relative to the smaller box) exceeds the threshold; the
query processor then fetches each merged region once instead of
re-fetching the shared pages per candidate.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.geometry.primitives import BoundingBox


def integrate_io_regions(
    regions: list[BoundingBox],
    threshold: float = 0.8,
) -> tuple[list[BoundingBox], list[int]]:
    """Merge significantly overlapping regions.

    Returns ``(merged, assignment)`` where ``assignment[i]`` is the
    index into ``merged`` serving input region i.  With
    ``threshold > 1`` no merging ever happens (the Fig. 9 "option
    off" configuration).
    """
    if not 0.0 < threshold:
        raise QueryError("threshold must be positive")
    merged: list[BoundingBox] = []
    members: list[list[int]] = []
    for i, region in enumerate(regions):
        target = None
        for j, box in enumerate(merged):
            if box.overlap_fraction(region) >= threshold:
                target = j
                break
        if target is None:
            merged.append(region)
            members.append([i])
        else:
            merged[target] = merged[target].union(region)
            members[target].append(i)
    # Merging can create new overlaps; iterate to a fixed point.
    changed = True
    while changed and len(merged) > 1:
        changed = False
        for a in range(len(merged)):
            for b in range(a + 1, len(merged)):
                if merged[a].overlap_fraction(merged[b]) >= threshold:
                    merged[a] = merged[a].union(merged[b])
                    members[a].extend(members[b])
                    del merged[b]
                    del members[b]
                    changed = True
                    break
            if changed:
                break
    assignment = [0] * len(regions)
    for group_idx, group in enumerate(members):
        for i in group:
            assignment[i] = group_idx
    return merged, assignment
