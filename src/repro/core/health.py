"""Engine health: a small state machine over the storage substrate.

An engine that keeps answering queries while its simulated disk rots
needs a single place where "how bad is it?" is decided.
:class:`EngineHealth` folds the page quarantine, the fault counters
and (when a batch executor attaches one) the circuit breaker into a
three-state verdict:

* ``HEALTHY`` — no storage trouble observed; every answer is exact.
* ``DEGRADED`` — some reads have failed past the retry policy (pages
  are quarantined, or ``reads_failed_total`` is non-zero).  Queries
  still run; answers may come back ``degraded=True`` with
  ``degraded_reason="storage"`` and a sound ``max_error``.
* ``FAILED`` — the substrate is effectively gone: the circuit breaker
  is open, or the quarantined fraction of the page file crossed
  ``failed_quarantine_fraction``.  Batch executors stop admitting new
  queries (fail fast) instead of burning retry budget.

The verdict is *evaluated on read* — ``state()`` recomputes from the
live quarantine/fault/breaker state, so readmissions and breaker
recovery move the engine back toward ``HEALTHY`` without anyone
having to push events into this object.  Transitions are recorded
(``transitions`` and the ``engine.health_transitions_total`` counter)
so tests and benchmarks can assert the trajectory.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.obs.context import active_registry

HEALTH_HEALTHY = "healthy"
HEALTH_DEGRADED = "degraded"
HEALTH_FAILED = "failed"


class EngineHealth:
    """Live health verdict for one :class:`SurfaceKNNEngine`.

    ``failed_quarantine_fraction`` is the quarantined share of the
    page file at which the engine is declared ``FAILED`` (default
    half: with most pages refusing reads, degraded answers stop being
    useful).
    """

    def __init__(self, engine, failed_quarantine_fraction: float = 0.5):
        if not 0.0 < failed_quarantine_fraction <= 1.0:
            raise QueryError(
                "failed_quarantine_fraction must be in (0, 1], got "
                f"{failed_quarantine_fraction}"
            )
        self.engine = engine
        self.failed_quarantine_fraction = failed_quarantine_fraction
        self._breaker = None
        self._last_state = HEALTH_HEALTHY
        self.cause: str = ""
        self.cause_kind: str = ""
        # (from_state, to_state, cause) triples, in observation order.
        self.transitions: list[tuple[str, str, str]] = []

    def attach_breaker(self, breaker) -> None:
        """Let a batch executor's circuit breaker feed the verdict
        (an open breaker is a ``FAILED`` cause of kind "breaker")."""
        self._breaker = breaker

    def _evaluate(self) -> tuple[str, str, str]:
        """(state, cause, cause_kind) from live substrate state."""
        if self._breaker is not None and self._breaker.open:
            return (
                HEALTH_FAILED,
                "circuit breaker open after consecutive storage failures",
                "breaker",
            )
        pages = self.engine.pages
        if pages is None:
            return HEALTH_HEALTHY, "", ""
        quarantined = len(pages.quarantine)
        total = pages.num_pages
        if total > 0 and quarantined / total >= self.failed_quarantine_fraction:
            return (
                HEALTH_FAILED,
                f"{quarantined}/{total} pages quarantined "
                f"(>= {self.failed_quarantine_fraction:.0%})",
                "quarantine",
            )
        if quarantined > 0:
            return (
                HEALTH_DEGRADED,
                f"{quarantined} page(s) quarantined",
                "quarantine",
            )
        if pages.fault_stats.reads_failed_total > 0:
            return (
                HEALTH_DEGRADED,
                f"{pages.fault_stats.reads_failed_total} read(s) failed "
                "past the retry policy",
                "faults",
            )
        return HEALTH_HEALTHY, "", ""

    def state(self) -> str:
        """Current verdict; records (and counts) state transitions."""
        state, cause, kind = self._evaluate()
        self.cause = cause
        self.cause_kind = kind
        if state != self._last_state:
            self.transitions.append((self._last_state, state, cause))
            active_registry().counter("engine.health_transitions_total").add(1)
            self._last_state = state
        return state

    @property
    def healthy(self) -> bool:
        return self.state() == HEALTH_HEALTHY

    def as_dict(self) -> dict:
        """JSON-ready snapshot (for bench reports and CI smoke)."""
        state = self.state()
        out = {
            "state": state,
            "cause": self.cause,
            "cause_kind": self.cause_kind,
            "transitions": len(self.transitions),
        }
        pages = self.engine.pages
        if pages is not None:
            out["quarantined_pages"] = len(pages.quarantine)
            out["num_pages"] = pages.num_pages
            out["reads_failed_total"] = pages.fault_stats.reads_failed_total
        return out
