"""Query budgets with graceful degradation (anytime sk-NN).

MR3's interval ranking makes budget-bounded search natural: every
candidate carries a sound ``[lb, ub]`` surface-distance interval at
all times, so stopping refinement early still leaves a well-defined
approximate answer with a per-query error bound — the same
observation that makes budget-bounded k-NN practical on road
networks.

A :class:`QueryBudget` is a reusable, immutable *spec*; each query
materializes it into a :class:`BudgetTracker` pinned to that query's
start time and I/O snapshot.  Budget checks happen between refinement
levels, so exhaustion stops the loop at the current resolution — the
answer returned is the normal top-k by upper bound, flagged
``degraded=True`` with a computed ``max_error``, never an exception.

Semantics:

* ``max_pages`` bounds the query's *logical* page reads.  Logical
  reads are deterministic for a given engine and query (physical
  reads depend on shared buffer-pool state), so the same budget
  always degrades at the same level.
* ``max_seconds`` bounds wall-clock time from query start.
* Checks are level-granular: the level that trips the budget runs to
  completion, so a budget can be slightly overshot — the contract is
  "stop refining", not "hard-abort mid-level".  As a backstop,
  ``max_seconds`` is additionally enforced *inside* the CSR kernel
  relaxation loops (every few dozen settled nodes, via
  :mod:`repro.geodesic.deadline`), so one pathological search cannot
  blow arbitrarily far past the deadline between two level
  boundaries; the ranker catches the kernel's deadline marker at the
  level boundary and degrades as usual.
* The very first filter level always runs (without it no candidate
  has a finite upper bound and there would be no answer to degrade
  to).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import QueryError


@dataclass(frozen=True)
class QueryBudget:
    """Per-query resource limits (``None`` = unlimited).

    ``max_pages`` counts logical page reads; ``max_seconds`` counts
    wall-clock seconds from query start.
    """

    max_pages: int | None = None
    max_seconds: float | None = None

    def __post_init__(self):
        if self.max_pages is not None and self.max_pages < 0:
            raise QueryError(f"max_pages must be >= 0, got {self.max_pages}")
        if self.max_seconds is not None and self.max_seconds < 0:
            raise QueryError(
                f"max_seconds must be >= 0, got {self.max_seconds}"
            )

    @property
    def unlimited(self) -> bool:
        return self.max_pages is None and self.max_seconds is None

    def tracker(self, stats=None) -> "BudgetTracker":
        """Materialize this spec for one query starting *now*."""
        return BudgetTracker(self, stats)


class BudgetTracker:
    """One query's live budget state.

    Exhaustion is *sticky*: once a check trips, every later check
    reports exhausted, so the filter and ranking phases of one query
    agree.  ``stats`` may be a plain
    :class:`~repro.storage.stats.IOStatistics` or the thread-local
    router — ``snapshot``/``delta_since`` are per-thread on the
    latter, which is exactly the per-query window wanted under
    concurrency.  Without stats (``with_storage=False`` engines) the
    page limit is untracked and only the time limit applies.
    """

    def __init__(self, budget: QueryBudget, stats=None):
        self.budget = budget
        self._stats = stats if budget.max_pages is not None else None
        self._io0 = self._stats.snapshot() if self._stats is not None else None
        self._t0 = time.perf_counter()
        self.exhausted_reason: str | None = None

    @property
    def exhausted(self) -> bool:
        return self.exhausted_reason is not None

    def pages_used(self) -> int:
        """Logical reads since this tracker started (0 untracked)."""
        if self._stats is None:
            return 0
        return self._stats.delta_since(self._io0).logical_reads

    def seconds_used(self) -> float:
        return time.perf_counter() - self._t0

    @property
    def deadline(self) -> float | None:
        """Absolute ``perf_counter`` deadline for kernel-level checks
        (None when no time limit is set)."""
        if self.budget.max_seconds is None:
            return None
        return self._t0 + self.budget.max_seconds

    def note_mid_level_stop(self) -> None:
        """Record that a kernel hit the wall-clock deadline mid-level
        (the kernel raised, the ranker stopped refining)."""
        if self.exhausted_reason is None:
            self.exhausted_reason = (
                f"time budget exhausted mid-level ({self.seconds_used():.3f}s"
                f"/{self.budget.max_seconds:.3f}s)"
            )

    def check(self) -> bool:
        """Re-evaluate the limits; True once the budget is exhausted."""
        if self.exhausted_reason is not None:
            return True
        budget = self.budget
        if budget.max_pages is not None and self._stats is not None:
            used = self.pages_used()
            if used >= budget.max_pages:
                self.exhausted_reason = (
                    f"page budget exhausted ({used}/{budget.max_pages} "
                    "logical reads)"
                )
                return True
        if budget.max_seconds is not None:
            elapsed = self.seconds_used()
            if elapsed >= budget.max_seconds:
                self.exhausted_reason = (
                    f"time budget exhausted ({elapsed:.3f}s"
                    f"/{budget.max_seconds:.3f}s)"
                )
                return True
        return False
