"""Resolution schedules (the paper's step length ``s``).

Section 5.3 defines three step-length settings, each pairing a DMTM
resolution ladder with an MSDN ladder (iteration i uses the i-th
entry of each; the shorter ladder holds its last value):

* ``s = 1``: DMTM 0.5 %, 25 %, 50 %, 75 %, 100 %, 200 %;
  MSDN 25 %, 37.5 %, 50 %, 75 %, 100 %
* ``s = 2``: DMTM 0.5 %, 50 %, 100 %, 200 %; MSDN 25 %, 50 %, 100 %
* ``s = 3``: DMTM 0.5 %, 100 %, 200 %; MSDN 25 %, 100 %

The EA benchmark "starts from the original surface model and
continues to the pathnet level for ub estimation.  The 100 %
resolution SDN is used for lb estimation" — i.e. a two-level schedule
with no coarse filtering, which is what makes it the
no-multiresolution reference point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.multires.dmtm import RESOLUTION_PATHNET

_PRESETS: dict[object, tuple[tuple[float, ...], tuple[float, ...]]] = {
    1: (
        (0.005, 0.25, 0.5, 0.75, 1.0, RESOLUTION_PATHNET),
        (0.25, 0.375, 0.5, 0.75, 1.0),
    ),
    2: (
        (0.005, 0.5, 1.0, RESOLUTION_PATHNET),
        (0.25, 0.5, 1.0),
    ),
    3: (
        (0.005, 1.0, RESOLUTION_PATHNET),
        (0.25, 1.0),
    ),
    "ea": (
        (1.0, RESOLUTION_PATHNET),
        (1.0,),
    ),
}


@dataclass(frozen=True)
class ResolutionSchedule:
    """Paired DMTM/MSDN resolution ladders walked by the ranker."""

    name: str
    dmtm_levels: tuple[float, ...]
    msdn_levels: tuple[float, ...]

    @classmethod
    def preset(cls, step_length) -> "ResolutionSchedule":
        """One of the paper's settings: 1, 2, 3 or "ea"."""
        try:
            dmtm, msdn = _PRESETS[step_length]
        except KeyError:
            raise QueryError(
                f"unknown schedule {step_length!r}; use 1, 2, 3 or 'ea'"
            ) from None
        return cls(name=f"s={step_length}", dmtm_levels=dmtm, msdn_levels=msdn)

    @classmethod
    def custom(cls, dmtm_levels, msdn_levels, name: str = "custom") -> "ResolutionSchedule":
        dmtm = tuple(float(r) for r in dmtm_levels)
        msdn = tuple(float(r) for r in msdn_levels)
        if not dmtm or not msdn:
            raise QueryError("schedules need at least one level each")
        if list(dmtm) != sorted(dmtm) or list(msdn) != sorted(msdn):
            raise QueryError("schedule levels must be ascending")
        return cls(name=name, dmtm_levels=dmtm, msdn_levels=msdn)

    def __len__(self) -> int:
        return max(len(self.dmtm_levels), len(self.msdn_levels))

    def level(self, i: int) -> tuple[float, float]:
        """(dmtm_resolution, msdn_resolution) of iteration ``i``; the
        shorter ladder saturates at its last entry."""
        if not 0 <= i < len(self):
            raise QueryError(f"iteration {i} beyond schedule of {len(self)}")
        dmtm = self.dmtm_levels[min(i, len(self.dmtm_levels) - 1)]
        msdn = self.msdn_levels[min(i, len(self.msdn_levels) - 1)]
        return dmtm, msdn

    def levels(self):
        """Iterate (dmtm_resolution, msdn_resolution) pairs."""
        return (self.level(i) for i in range(len(self)))
