"""The public facade: build everything once, query many times.

:class:`SurfaceKNNEngine` owns the full stack the paper describes —
terrain mesh, DMTM, MSDN, object set with its 2D index, the simulated
paged storage — and exposes sk-NN queries by method:

* ``method="mr3"`` with ``step_length`` 1, 2 or 3 — the paper's
  algorithm at the three evaluated resolution step lengths;
* ``method="ea"`` — the Enhanced Approximation benchmark (same
  filters, no multiresolution);
* ``method="exact"`` — ground truth via exact geodesics.

Example
-------
>>> from repro import bearhead_like
>>> from repro.core import SurfaceKNNEngine
>>> engine = SurfaceKNNEngine.from_dem(bearhead_like(size=33), density=4)
>>> result = engine.query_xy(2000.0, 3000.0, k=3)
>>> len(result.object_ids)
3
"""

from __future__ import annotations

import time
from contextlib import nullcontext

from repro.core.baseline import exact_knn
from repro.core.budget import QueryBudget
from repro.core.health import EngineHealth
from repro.core.mr3 import MR3QueryProcessor, QueryMetrics, QueryResult
from repro.core.objects import ObjectSet
from repro.core.ranking import RankerOptions
from repro.core.schedule import ResolutionSchedule
from repro.errors import QueryError
from repro.msdn.msdn import MSDN
from repro.multires.dmtm import DMTM
from repro.obs.context import ObsContext, current
from repro.obs.profile import Profile
from repro.obs.tracing import NULL_TRACER, Span
from repro.storage.pages import PageManager
from repro.storage.stats import DiskModel, IOStatistics
from repro.terrain.mesh import TriangleMesh

#: Stateless, reusable stand-in for ``ctx.activate()`` when the
#: engine carries no ObsContext (the ambient context then applies).
_NULL_SCOPE = nullcontext()


class SurfaceKNNEngine:
    """End-to-end surface k-NN query engine.

    Parameters
    ----------
    mesh:
        The terrain surface.
    objects:
        An :class:`ObjectSet`; built uniformly at ``density``/km²
        when omitted.
    density, seed:
        Uniform object generation parameters (ignored when
        ``objects`` is given).
    page_size, buffer_pages:
        Simulated storage geometry.  The default buffer is small
        relative to the structures on purpose: "pages accessed"
        should reflect region fetches, as in the paper's Oracle runs.
    steiner_per_edge:
        Pathnet density of the DMTM's 200 % level (paper: 1).
    msdn_spacing, msdn_supersample:
        MSDN plane interval (default: mean edge length) and crossing
        line supersampling (see DESIGN.md).
    disk:
        Cost model converting pages into simulated I/O seconds.
    with_storage:
        Attach the paged storage layer (disable for pure-CPU runs).
    tracer:
        Optional :class:`repro.obs.tracing.Tracer`.  When given (and
        enabled), every query produces a span tree reachable from
        ``QueryResult.root_span`` and from ``tracer.finished()``.
        Defaults to the shared no-op tracer — zero overhead.
    obs:
        Optional :class:`repro.obs.ObsContext` carried by the engine.
        Every query then runs with that context *active*: its metrics
        land in ``obs.registry`` (not the process-wide default), its
        tracer is used unless ``tracer`` overrides it, and — when the
        context's profiler is enabled — every result carries a phase
        profile reachable via ``QueryResult.profile()``.  Without
        ``obs`` the engine reports into whatever context is active at
        call time (the deprecated process-wide default when none is).
    buffer_pool:
        Optional :class:`repro.storage.pages.BufferPool` to cache
        pages through — pass
        :func:`repro.storage.pages.shared_buffer_pool` to share one
        process-wide LRU across engines and threads.  By default the
        engine keeps a private pool of ``buffer_pages``.
    fault_injector:
        Optional :class:`repro.storage.FaultInjector` attached to the
        simulated disk — reads then see the injector's seeded schedule
        of transient errors, corruption and latency spikes, and the
        page manager's CRC + retry machinery recovers (or surfaces
        :class:`repro.errors.PageReadError` /
        :class:`repro.errors.PageCorruptionError`).  With no injector
        the read path is byte-identical to a fault-free engine.
    retry_policy:
        :class:`repro.storage.RetryPolicy` governing fault retries
        (default: 4 attempts, exponential simulated backoff).
    landmarks:
        Optional ALT-style landmark lower bounds
        (:mod:`repro.geodesic.landmarks`).  An ``int`` builds a
        :class:`~repro.geodesic.landmarks.LandmarkIndex` with that
        many farthest-point landmarks (tables persisted through the
        shared bound cache, so warm runs skip recomputation); a
        prebuilt index is used as-is; ``None`` (default) keeps every
        query bit-identical to a landmark-free engine.  With landmarks
        on, the returned neighbour sets and degraded/error reporting
        are unchanged — only the intervals may tighten and less work
        is done (see docs/performance.md, "Landmark bounds").
    lazy_landmarks:
        With ``landmarks`` given as an int, build a
        :class:`~repro.geodesic.landmarks.LazyLandmarkIndex` instead:
        selection runs up front, but the expensive exact rows are
        built incrementally — one per query inside the ranking loop
        (``landmark-lazy-build`` phase), each persisted through the
        shared bound cache — so the table cost amortizes across a
        sweep instead of blocking engine construction.
    """

    def __init__(
        self,
        mesh: TriangleMesh,
        objects: ObjectSet | None = None,
        density: float = 4.0,
        seed: int = 0,
        page_size: int = 2048,
        buffer_pages: int = 64,
        steiner_per_edge: int = 1,
        msdn_spacing: float | None = None,
        msdn_supersample: int = 8,
        disk: DiskModel | None = None,
        with_storage: bool = True,
        tracer=None,
        obs: ObsContext | None = None,
        buffer_pool=None,
        fault_injector=None,
        retry_policy=None,
        landmarks=None,
        lazy_landmarks: bool = False,
        degraded_mode: bool = True,
    ):
        self.mesh = mesh
        # With degraded_mode on (default), storage faults that exhaust
        # the retry policy degrade answers (redundant bound fallback,
        # sound intervals, degraded_reason="storage") instead of
        # raising StorageError; off restores fail-stop queries.
        self.degraded_mode = bool(degraded_mode)
        self.obs = obs
        if tracer is not None:
            self.tracer = tracer
        elif obs is not None:
            self.tracer = obs.tracer
        else:
            self.tracer = NULL_TRACER
        self.objects = (
            objects
            if objects is not None
            else ObjectSet.uniform(mesh, density, seed)
        )
        self.dmtm = DMTM(mesh, steiner_per_edge=steiner_per_edge)
        self.msdn = MSDN(
            mesh, spacing=msdn_spacing, supersample=msdn_supersample
        )
        self.stats = IOStatistics()
        self.disk = disk if disk is not None else DiskModel()
        self.pages: PageManager | None = None
        if with_storage:
            self.pages = PageManager(
                page_size=page_size,
                buffer_pages=buffer_pages,
                stats=self.stats,
                buffer=buffer_pool,
                fault_injector=fault_injector,
                retry_policy=retry_policy,
                tracer=self.tracer,
            )
            self.dmtm.attach_storage(self.pages)
            self.msdn.attach_storage(self.pages)
        self.landmarks = self._resolve_landmarks(landmarks, lazy=lazy_landmarks)
        self.health = EngineHealth(self)

    def _resolve_landmarks(self, landmarks, lazy: bool = False):
        if landmarks is None or isinstance(landmarks, bool):
            if landmarks:
                raise QueryError("landmarks must be an int count or a LandmarkIndex")
            return None
        if isinstance(landmarks, int):
            from repro.core.batch import shared_bound_cache
            from repro.geodesic.landmarks import LandmarkIndex, LazyLandmarkIndex

            builder = LazyLandmarkIndex if lazy else LandmarkIndex
            return builder.build(
                self.mesh, count=landmarks, cache=shared_bound_cache()
            )
        return landmarks

    def with_landmarks(self, landmarks, lazy: bool = False) -> "SurfaceKNNEngine":
        """A shallow clone of this engine with landmark bounds
        attached (or detached, with ``None``).

        Mesh, DMTM, MSDN, object set, storage and stats are *shared*
        with the original — only the landmark index differs — so
        attaching landmarks to an already-built engine costs just the
        index build (cache-hit-free on the second call thanks to the
        shared bound cache).  ``lazy=True`` attaches an incremental
        :class:`~repro.geodesic.landmarks.LazyLandmarkIndex` (see the
        constructor's ``lazy_landmarks``).  Metrics consumers take
        per-query deltas, which the shared ``stats`` keeps correct.
        """
        import copy

        clone = copy.copy(self)
        clone.landmarks = clone._resolve_landmarks(landmarks, lazy=lazy)
        return clone

    @classmethod
    def from_dem(cls, dem, **kwargs) -> "SurfaceKNNEngine":
        """Build an engine directly from a :class:`DemGrid`."""
        return cls(TriangleMesh.from_dem(dem), **kwargs)

    def set_objects(self, objects: ObjectSet | None = None, density: float = 4.0, seed: int = 0) -> None:
        """Swap the object set while keeping DMTM/MSDN/storage.

        Density sweeps (Fig. 11) change only the objects; the terrain
        structures are pre-created once, as in the paper.
        """
        self.objects = (
            objects
            if objects is not None
            else ObjectSet.uniform(self.mesh, density, seed)
        )

    # ------------------------------------------------------------------
    # query entry points
    # ------------------------------------------------------------------

    def snap(self, x: float, y: float) -> int:
        """Nearest mesh vertex to a horizontal position."""
        return self.mesh.nearest_vertex((x, y))

    def _validate_query_args(self, query_vertex: int | None, k: int) -> None:
        """Reject malformed query arguments up front, with messages
        naming the offending value — before any storage or ranking
        work starts."""
        if k <= 0:
            raise QueryError(f"k must be >= 1, got {k}")
        if k > len(self.objects):
            raise QueryError(
                f"k={k} exceeds the {len(self.objects)} stored objects"
            )
        if query_vertex is not None and not (
            0 <= int(query_vertex) < self.mesh.num_vertices
        ):
            raise QueryError(
                f"query vertex {query_vertex} out of range "
                f"[0, {self.mesh.num_vertices})"
            )

    def query(
        self,
        query_vertex: int,
        k: int,
        method: str = "mr3",
        step_length: int = 1,
        integrate_io: bool = True,
        use_refined_region: bool = True,
        use_dummy_lb: bool = True,
        cold_cache: bool = True,
        tracer=None,
        obs: ObsContext | None = None,
        bound_cache=None,
        budget: QueryBudget | None = None,
    ) -> QueryResult:
        """Answer an sk-NN query at a mesh vertex.

        ``cold_cache`` drops the buffer pool first, so every query is
        measured from a cold start (the paper reports per-query page
        counts).  ``tracer`` overrides the engine tracer for this one
        query (the batch executor gives every query its own);
        ``obs`` overrides the engine's :class:`~repro.obs.ObsContext`
        for this one query — the query runs with it active, so its
        metrics and (when enabled) its phase profile stay scoped to
        that context.  ``bound_cache`` is an optional
        :class:`repro.core.batch.BoundCache` sharing bound
        computations across queries without changing any answer.

        ``budget`` optionally caps the query's logical page reads
        and/or wall-clock seconds
        (:class:`repro.core.budget.QueryBudget`).  Exhaustion degrades
        gracefully: the result comes back ``degraded=True`` with sound
        intervals and a per-query ``max_error`` instead of raising.
        """
        self._validate_query_args(query_vertex, k)
        ctx = obs if obs is not None else self.obs
        if tracer is None:
            tracer = ctx.tracer if ctx is not None else self.tracer
        if method == "mr3":
            schedule = ResolutionSchedule.preset(step_length)
        elif method == "ea":
            schedule = ResolutionSchedule.preset("ea")
        elif method != "exact":
            raise QueryError(
                f"unknown method {method!r}; use 'mr3', 'ea' or 'exact'"
            )
        scope = ctx.activate() if ctx is not None else _NULL_SCOPE
        with scope:
            active = ctx if ctx is not None else current()
            profiler = active.profiler
            if cold_cache and self.pages is not None:
                self.pages.drop_buffer()
            with profiler.phase("query") as phase_root:
                if method == "exact":
                    result = self._query_exact(query_vertex, k, tracer=tracer)
                else:
                    options = RankerOptions(
                        integrate_io=integrate_io,
                        use_refined_region=use_refined_region,
                        use_dummy_lb=use_dummy_lb,
                    )
                    processor = MR3QueryProcessor(
                        self.mesh,
                        self.dmtm,
                        self.msdn,
                        self.objects,
                        schedule,
                        options=options,
                        stats=self.stats,
                        disk=self.disk,
                        tracer=tracer,
                        bound_cache=bound_cache,
                        profiler=profiler,
                        landmarks=self.landmarks,
                        degraded_mode=self.degraded_mode,
                    )
                    with tracer.span(
                        "engine.query", method=method, k=k,
                        cold_cache=cold_cache,
                    ) as span:
                        result = processor.query(query_vertex, k, budget=budget)
                    if isinstance(span, Span):
                        result.root_span = span
                    result.method = (
                        method if method == "ea" else f"mr3/{schedule.name}"
                    )
            if phase_root is not None:
                result.profile_data = Profile(
                    phase_root, label=f"{result.method}/k={k}"
                )
            if method != "exact":
                self._observe(result, active.registry)
        return result

    def _observe(self, result: QueryResult, registry) -> None:
        """Feed the resolved context's metrics registry from a
        finished query."""
        registry.counter(f"engine.queries.{result.method}").add(1)
        registry.histogram("engine.query.cpu_seconds").observe(
            result.metrics.cpu_seconds
        )
        registry.histogram(
            "engine.query.pages_accessed",
            buckets=(1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000),
        ).observe(result.metrics.pages_accessed)
        if result.degraded:
            registry.counter("engine.queries.degraded").add(1)
            registry.counter(
                "engine.queries.degraded."
                f"{result.degraded_reason or 'budget'}"
            ).add(1)
            registry.histogram("engine.query.max_error").observe(
                result.max_error
            )

    def query_xy(self, x: float, y: float, k: int, **kwargs) -> QueryResult:
        """Convenience: query at the vertex nearest (x, y)."""
        return self.query(self.snap(x, y), k, **kwargs)

    def query_point(
        self,
        x: float,
        y: float,
        k: int,
        method: str = "mr3",
        step_length: int = 1,
        cold_cache: bool = True,
        budget: QueryBudget | None = None,
        **ranker_opts,
    ) -> QueryResult:
        """sk-NN at an *arbitrary* surface point, via the paper's
        embedding step (§3.2): the point is anchored to its facet's
        vertices by in-facet segments, so every reported bound remains
        a genuine surface path length."""
        from repro.core.embedding import embed_point

        self._validate_query_args(None, k)
        query = embed_point(self.mesh, x, y)
        if isinstance(query, int):
            return self.query(
                query, k, method=method, step_length=step_length,
                cold_cache=cold_cache, budget=budget, **ranker_opts,
            )
        if method != "mr3":
            raise QueryError("embedded-point queries support method='mr3'")
        scope = self.obs.activate() if self.obs is not None else _NULL_SCOPE
        with scope:
            profiler = (
                self.obs.profiler if self.obs is not None
                else current().profiler
            )
            if cold_cache and self.pages is not None:
                self.pages.drop_buffer()
            processor = MR3QueryProcessor(
                self.mesh,
                self.dmtm,
                self.msdn,
                self.objects,
                ResolutionSchedule.preset(step_length),
                options=RankerOptions(**ranker_opts),
                stats=self.stats,
                disk=self.disk,
                tracer=self.tracer,
                profiler=profiler,
                landmarks=self.landmarks,
                degraded_mode=self.degraded_mode,
            )
            with profiler.phase("query") as phase_root:
                result = processor.query(query, k, budget=budget)
            if phase_root is not None:
                result.profile_data = Profile(
                    phase_root, label=f"embedded/k={k}"
                )
        return result

    def _query_exact(self, query_vertex: int, k: int, tracer=None) -> QueryResult:
        tracer = tracer if tracer is not None else self.tracer
        cpu_start = time.process_time()
        with tracer.span(
            "engine.query", method="exact", k=k, query_vertex=query_vertex
        ):
            pairs = exact_knn(self.mesh, self.objects, query_vertex, k)
        metrics = QueryMetrics(cpu_seconds=time.process_time() - cpu_start)
        return QueryResult(
            query_vertex=query_vertex,
            k=k,
            object_ids=[obj for obj, _d in pairs],
            intervals=[(d, d) for _obj, d in pairs],
            metrics=metrics,
            method="exact",
        )

    def range_query(
        self,
        query_vertex: int,
        radius: float,
        step_length: int = 1,
        cold_cache: bool = True,
    ) -> QueryResult:
        """Surface range query: all objects within ``radius`` of the
        query *by surface distance* (the paper's §6 extension).

        Correctness of the 2D prefilter: ``dS >= dE >= dE_xy``, so any
        object whose xy-projection is farther than ``radius`` cannot
        be inside.
        """
        if radius < 0:
            raise QueryError("radius must be non-negative")
        if cold_cache and self.pages is not None:
            self.pages.drop_buffer()
        from repro.core.ranking import DistanceRanker

        io_before = self.stats.snapshot()
        cpu_start = time.process_time()
        schedule = ResolutionSchedule.preset(step_length)
        ranker = DistanceRanker(
            self.mesh, self.dmtm, self.msdn, schedule,
            stats=self.stats, tracer=self.tracer,
            profiler=(
                self.obs.profiler if self.obs is not None else None
            ),
            landmarks=self.landmarks,
        )
        q_xy = self.mesh.vertices[query_vertex][:2]
        with self.tracer.span(
            "engine.range_query", radius=radius, query_vertex=query_vertex
        ):
            candidate_ids = self.objects.range_2d(q_xy, radius)
            candidates = ranker.make_candidates(candidate_ids, self.objects)
            inside, certain = ranker.rank_within(
                query_vertex, candidates, radius
            )
        metrics = QueryMetrics(cpu_seconds=time.process_time() - cpu_start)
        delta = self.stats.delta_since(io_before)
        metrics.pages_accessed = delta.physical_reads
        metrics.logical_reads = delta.logical_reads
        metrics.reads_by_class = delta.physical_by_class
        metrics.io_seconds = self.disk.io_seconds(delta)
        metrics.candidates_examined = len(candidates)
        return QueryResult(
            query_vertex=query_vertex,
            k=len(inside),
            object_ids=[c.object_id for c in inside],
            intervals=[(c.lb, c.ub) for c in inside],
            metrics=metrics,
            method="surface-range",
            converged=certain,
        )

    def closest_pair(self, step_length: int = 2) -> tuple[tuple[int, int], tuple[float, float]]:
        """Closest object pair by surface distance (paper §6).

        Returns ``((obj_a, obj_b), (lb, ub))``.
        """
        from repro.core.pairs import surface_closest_pair

        return surface_closest_pair(
            self.mesh,
            self.dmtm,
            self.msdn,
            self.objects,
            ResolutionSchedule.preset(step_length),
        )

    def obstacle_query(
        self,
        query_vertex: int,
        k: int,
        forbidden_faces=None,
        max_slope_deg: float | None = None,
    ) -> QueryResult:
        """Obstacle-constrained sk-NN (the paper's future-work
        extension): neighbours by surface distance along paths that
        avoid the given faces and/or any face steeper than
        ``max_slope_deg``.  Unreachable objects are simply not
        returned."""
        from repro.core.obstacles import obstacle_knn, steep_faces

        forbidden = set(forbidden_faces) if forbidden_faces else set()
        if max_slope_deg is not None:
            forbidden |= steep_faces(self.mesh, max_slope_deg)
        cpu_start = time.process_time()
        pairs = obstacle_knn(self.mesh, self.objects, query_vertex, k, forbidden)
        metrics = QueryMetrics(cpu_seconds=time.process_time() - cpu_start)
        return QueryResult(
            query_vertex=query_vertex,
            k=k,
            object_ids=[obj for obj, _d in pairs],
            intervals=[(d, d) for _obj, d in pairs],
            metrics=metrics,
            method="obstacle",
        )

    # ------------------------------------------------------------------
    # analysis helpers (Fig. 8 and docs)
    # ------------------------------------------------------------------

    def distance_range(
        self,
        vertex_a: int,
        vertex_b: int,
        dmtm_resolution: float,
        msdn_resolution: float,
        roi=None,
    ) -> tuple[float, float]:
        """(lb, ub) between two vertices at one resolution pair —
        the quantity behind the paper's accuracy measure ε = lb/ub."""
        ub_res = self.dmtm.upper_bound(vertex_a, vertex_b, dmtm_resolution, roi=roi)
        if ub_res is None:
            raise QueryError("upper bound not computable over this region")
        lb_res = self.msdn.lower_bound(
            self.mesh.vertices[vertex_a],
            self.mesh.vertices[vertex_b],
            msdn_resolution,
            roi=roi,
        )
        return lb_res.value, ub_res.value
