"""Surface closest-pair queries — the second "other distance
comparison based query" the paper's conclusion says the DMTM/MSDN
framework supports (§6).

Find the pair of objects with the smallest *surface* distance.  Same
interval machinery as MR3: every pair carries [lb, ub]; coarse levels
prune pairs whose lower bound exceeds the best upper bound seen; only
surviving pairs are refined at higher resolution, grouped by source
so one Dijkstra serves all pairs sharing an endpoint.
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import DistanceInterval
from repro.errors import QueryError
from repro.geometry.ellipse import EllipseRegion


def surface_closest_pair(
    mesh,
    dmtm,
    msdn,
    objects,
    schedule,
) -> tuple[tuple[int, int], tuple[float, float]]:
    """The closest object pair by surface distance.

    Returns ``((obj_a, obj_b), (lb, ub))`` with ``obj_a < obj_b``; the
    interval brackets the pair's true surface distance.
    """
    n = len(objects)
    if n < 2:
        raise QueryError("closest pair needs at least two objects")

    pairs: dict[tuple[int, int], DistanceInterval] = {}
    for a in range(n):
        pa = objects.position_of(a)
        for b in range(a + 1, n):
            interval = DistanceInterval()
            interval.refine_lb(
                float(np.linalg.norm(pa - objects.position_of(b)))
            )
            pairs[(a, b)] = interval

    active = set(pairs)
    for res_u, res_l in schedule.levels():
        if not active:
            break
        best_ub = min(pairs[p].ub for p in pairs)
        # Keep only pairs that could still win.
        active = {p for p in active if pairs[p].lb <= best_ub}
        if len(active) <= 1 and all(
            np.isfinite(pairs[p].ub) for p in active
        ):
            break
        # Upper bounds: one multi-target Dijkstra per distinct source.
        by_source: dict[int, list[tuple[int, int]]] = {}
        for a, b in active:
            by_source.setdefault(a, []).append((a, b))
        roi = _joint_roi(objects, active, pairs)
        network = dmtm.extract_network(res_u, roi)
        for a, group in by_source.items():
            targets = [objects.vertex_of(b) for _a, b in group]
            results = dmtm.upper_bounds_from(
                objects.vertex_of(a), targets, network
            )
            for (_a, b) in group:
                result = results.get(objects.vertex_of(b))
                if result is not None:
                    pairs[(a, b)].refine_ub(result.value)
        # Lower bounds only for pairs near the decision boundary.
        best_ub = min(pairs[p].ub for p in pairs)
        for a, b in list(active):
            interval = pairs[(a, b)]
            if interval.lb > best_ub:
                continue
            lb = msdn.lower_bound(
                objects.position_of(a),
                objects.position_of(b),
                res_l,
                roi=_pair_roi(objects, a, b, interval),
            )
            interval.refine_lb(min(lb.value, interval.ub))
    best = min(pairs, key=lambda p: (pairs[p].ub, p))
    return best, (pairs[best].lb, pairs[best].ub)


def _pair_roi(objects, a: int, b: int, interval: DistanceInterval):
    if not np.isfinite(interval.ub):
        return None
    ellipse = EllipseRegion(
        objects.position_of(a)[:2],
        objects.position_of(b)[:2],
        interval.ub * 1.001,
    )
    return [ellipse.mbr()]


def _joint_roi(objects, active, pairs):
    """Union of the active pairs' ellipse MBRs (None while any pair
    is still unbounded)."""
    boxes = []
    for a, b in active:
        roi = _pair_roi(objects, a, b, pairs[(a, b)])
        if roi is None:
            return None
        boxes.extend(roi)
    return boxes
