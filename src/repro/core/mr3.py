"""Algorithm MR3 — Multi-Resolution Range Ranking (paper §4.1).

The four steps:

1. **2D k-NN query** — the k objects whose xy-projections are nearest
   the query projection q' (R-tree best-first over ``Dxy``);
2. **surface distance calculation** — rank those k candidates with
   the multiresolution :class:`DistanceRanker` to obtain the k-th
   neighbour's (tight) upper bound ub(q, b);
3. **2D range query** — all objects whose projections are within
   ub(q, b) of q'.  Correctness: any object outside that circle has
   ``dS >= dE >= dE_xy > ub(q, b)`` while k objects already beat
   ub(q, b);
4. **surface distance ranking** — rank the step-3 candidate set until
   ``ub(p_k) <= lb(p_{k+1})``.

Bounds computed in step 2 are reused in step 4 (the two steps run the
same ranker over overlapping candidate sets).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.core.bounds import Candidate
from repro.core.embedding import EmbeddedQuery, source_of
from repro.core.ranking import DistanceRanker, RankerOptions
from repro.errors import QueryError
from repro.storage.stats import DiskModel, IOStatistics


@dataclass
class QueryMetrics:
    """Per-query costs, mirroring the paper's reported series."""

    cpu_seconds: float = 0.0
    io_seconds: float = 0.0
    pages_accessed: int = 0
    iterations_filter: int = 0
    iterations_ranking: int = 0
    candidates_examined: int = 0

    @property
    def total_seconds(self) -> float:
        """Total cost = CPU + simulated disk time (Figs 10-11 (a)/(d))."""
        return self.cpu_seconds + self.io_seconds


@dataclass
class QueryResult:
    """Outcome of one sk-NN query."""

    query_vertex: int
    k: int
    object_ids: list[int]
    intervals: list[tuple[float, float]]
    metrics: QueryMetrics = field(default_factory=QueryMetrics)
    method: str = "mr3"
    converged: bool = True
    # EXPLAIN traces of the two ranking phases (one entry per
    # resolution level): see RankingOutcome.trace.
    filter_trace: list = field(default_factory=list)
    ranking_trace: list = field(default_factory=list)

    def explain(self) -> str:
        """Human-readable account of how the query was answered."""
        lines = [
            f"{self.method} query at vertex {self.query_vertex}, "
            f"k={self.k}, converged={self.converged}"
        ]
        for label, trace in (
            ("step 2 (filter C1)", self.filter_trace),
            ("step 4 (rank C2)", self.ranking_trace),
        ):
            if not trace:
                continue
            lines.append(f"{label}:")
            for entry in trace:
                lines.append(
                    "  level {level}: DMTM {dmtm_resolution:>5.1%} / "
                    "MSDN {msdn_resolution:>4.0%}  active {active_before}"
                    " -> {active_after}  kth in [{kth_lb:.1f}, {kth_ub:.1f}]"
                    "{done}".format(
                        **{**entry, "done": "  DONE" if entry["done"] else ""}
                    )
                )
        m = self.metrics
        lines.append(
            f"cost: {m.cpu_seconds * 1000:.0f} ms CPU, "
            f"{m.pages_accessed} pages, {len(self.object_ids)} results"
        )
        return "\n".join(lines)

    def __post_init__(self):
        if len(self.object_ids) != len(self.intervals):
            raise QueryError("object/interval count mismatch")


class MR3QueryProcessor:
    """Executes sk-NN queries over pre-built DMTM/MSDN structures."""

    def __init__(
        self,
        mesh,
        dmtm,
        msdn,
        objects,
        schedule,
        options: RankerOptions | None = None,
        stats: IOStatistics | None = None,
        disk: DiskModel | None = None,
    ):
        self.mesh = mesh
        self.objects = objects
        self.schedule = schedule
        self.ranker = DistanceRanker(mesh, dmtm, msdn, schedule, options)
        self.stats = stats
        self.disk = disk if disk is not None else DiskModel()

    def query(self, query, k: int) -> QueryResult:
        """Answer the sk-NN query at a mesh vertex or an
        :class:`repro.core.embedding.EmbeddedQuery` point."""
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if isinstance(query, EmbeddedQuery):
            query_vertex = min(query.anchors, key=lambda a: a[1])[0]
        else:
            if not 0 <= query < self.mesh.num_vertices:
                raise QueryError(f"query vertex {query} out of range")
            query_vertex = int(query)
        if k > len(self.objects):
            raise QueryError(
                f"k={k} exceeds the {len(self.objects)} stored objects"
            )
        io_before = self.stats.snapshot() if self.stats is not None else None
        cpu_start = time.process_time()

        q_pos, _anchors = source_of(self.mesh, query)
        q_xy = q_pos[:2]

        # Step 1: 2D k-NN filter.
        c1_ids = self.objects.knn_2d(q_xy, k)

        # Step 2: rank C1 to get a tight ub for the k-th neighbour.
        cands1 = self.ranker.make_candidates(c1_ids, self.objects)
        out1 = self.ranker.rank(
            query,
            cands1,
            k,
            tighten_kth=self.ranker.options.filter_tighten,
        )
        radius = out1.kth_ub
        if not math.isfinite(radius):
            raise QueryError(
                "could not bound the k-th neighbour; is the terrain connected?"
            )

        # Step 3: 2D range query with the step-2 radius.
        c2_ids = self.objects.range_2d(q_xy, radius)

        # Step 4: rank C2, reusing the intervals from step 2.
        known: dict[int, Candidate] = {c.object_id: c for c in cands1}
        cands2 = [
            known.get(obj)
            or self.ranker.make_candidates([obj], self.objects)[0]
            for obj in c2_ids
        ]
        out2 = self.ranker.rank(query, cands2, k)

        cpu_seconds = time.process_time() - cpu_start
        metrics = QueryMetrics(
            cpu_seconds=cpu_seconds,
            iterations_filter=out1.iterations,
            iterations_ranking=out2.iterations,
            candidates_examined=len(cands2),
        )
        if io_before is not None:
            delta = self.stats.delta_since(io_before)
            metrics.pages_accessed = delta.physical_reads
            metrics.io_seconds = self.disk.io_seconds(delta)

        winners = out2.winners
        return QueryResult(
            query_vertex=query_vertex,
            k=k,
            object_ids=[c.object_id for c in winners],
            intervals=[(c.lb, c.ub) for c in winners],
            metrics=metrics,
            method=self.schedule.name,
            converged=out2.converged,
            filter_trace=out1.trace or [],
            ranking_trace=out2.trace or [],
        )
