"""Algorithm MR3 — Multi-Resolution Range Ranking (paper §4.1).

The four steps:

1. **2D k-NN query** — the k objects whose xy-projections are nearest
   the query projection q' (R-tree best-first over ``Dxy``);
2. **surface distance calculation** — rank those k candidates with
   the multiresolution :class:`DistanceRanker` to obtain the k-th
   neighbour's (tight) upper bound ub(q, b);
3. **2D range query** — all objects whose projections are within
   ub(q, b) of q'.  Correctness: any object outside that circle has
   ``dS >= dE >= dE_xy > ub(q, b)`` while k objects already beat
   ub(q, b);
4. **surface distance ranking** — rank the step-3 candidate set until
   ``ub(p_k) <= lb(p_{k+1})``.

Bounds computed in step 2 are reused in step 4 (the two steps run the
same ranker over overlapping candidate sets).
"""

from __future__ import annotations

import math
import time
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.core.bounds import Candidate
from repro.core.budget import QueryBudget
from repro.core.embedding import EmbeddedQuery, source_of
from repro.core.ranking import DistanceRanker, RankerOptions
from repro.errors import QueryError
from repro.geodesic.deadline import deadline_scope
from repro.obs.profile import NULL_PROFILER
from repro.obs.tracing import NULL_TRACER, Span
from repro.storage.stats import DiskModel, IOStatistics


@dataclass
class QueryMetrics:
    """Per-query costs, mirroring the paper's reported series.

    ``pages_accessed`` counts buffer-pool misses (the paper's
    observable); ``logical_reads`` counts every page request, so warm
    runs (``cold_cache=False``) are distinguishable from cold ones
    through ``buffer_hit_rate``.  ``reads_by_class`` splits the
    physical reads per structure (dmtm / msdn / objects / index).
    """

    cpu_seconds: float = 0.0
    io_seconds: float = 0.0
    pages_accessed: int = 0
    logical_reads: int = 0
    reads_by_class: dict = field(default_factory=dict)
    iterations_filter: int = 0
    iterations_ranking: int = 0
    candidates_examined: int = 0

    @property
    def total_seconds(self) -> float:
        """Total cost = CPU + simulated disk time (Figs 10-11 (a)/(d))."""
        return self.cpu_seconds + self.io_seconds

    @property
    def buffer_hit_rate(self) -> float:
        """Fraction of this query's page requests served by the
        buffer pool (0.0 when the query issued no reads)."""
        if self.logical_reads == 0:
            return 0.0
        return 1.0 - self.pages_accessed / self.logical_reads


@dataclass
class QueryResult:
    """Outcome of one sk-NN query."""

    query_vertex: int
    k: int
    object_ids: list[int]
    intervals: list[tuple[float, float]]
    metrics: QueryMetrics = field(default_factory=QueryMetrics)
    method: str = "mr3"
    converged: bool = True
    # EXPLAIN traces of the two ranking phases: one typed
    # repro.obs.events.LevelEvent per resolution level.
    filter_trace: list = field(default_factory=list)
    ranking_trace: list = field(default_factory=list)
    # Root tracing span of the query, when run under an enabled
    # tracer (repro.obs.tracing.Tracer); None otherwise.
    root_span: Span | None = None
    # Anytime contract: True when a query budget stopped refinement
    # early.  The answer is then the best-known top-k by upper bound
    # and ``max_error`` bounds how far the reported k-th distance can
    # sit above the true one (0.0 for exact answers).  Degraded
    # results are never an exception — intervals stay sound.
    degraded: bool = False
    max_error: float = 0.0
    budget_reason: str | None = None
    # Why the answer is degraded: "budget" (a QueryBudget stopped
    # refinement), "storage" (a page read failed and a redundant
    # bound source was substituted), or None for exact answers.
    degraded_reason: str | None = None
    # Phase profile of the query (repro.obs.profile.Profile) when it
    # ran under a profiling ObsContext; None otherwise.
    profile_data: object | None = None
    # Non-winner step-4 candidates as ``(object_id, lower_bound)``
    # pairs.  Every object whose straight-line distance could beat the
    # reported k-th upper bound appears here (the step-3 circle
    # contains all such objects), so a caller holding the result can
    # certify separation of the answer set from the rest of the
    # dataset — the sharded engine's acceptance test.
    rest: tuple = ()

    def profile(self):
        """The query's phase profile (:class:`repro.obs.Profile`), or
        ``None`` when profiling was not enabled.  ``render_tree()`` on
        the returned object prints the flamegraph-style breakdown;
        ``to_record()`` exports the ``repro.profile/v1`` JSON."""
        return self.profile_data

    def explain(self) -> str:
        """Human-readable account of how the query was answered."""
        from repro.obs.export import render

        return render(self)

    def trace_record(self) -> dict:
        """JSONL-ready export of this query's trace (events, metrics
        and spans) — see :func:`repro.obs.export.query_record`."""
        from repro.obs.export import query_record

        return query_record(self)

    def __post_init__(self):
        if len(self.object_ids) != len(self.intervals):
            raise QueryError("object/interval count mismatch")


class MR3QueryProcessor:
    """Executes sk-NN queries over pre-built DMTM/MSDN structures."""

    def __init__(
        self,
        mesh,
        dmtm,
        msdn,
        objects,
        schedule,
        options: RankerOptions | None = None,
        stats: IOStatistics | None = None,
        disk: DiskModel | None = None,
        tracer=None,
        bound_cache=None,
        profiler=None,
        landmarks=None,
        degraded_mode: bool = True,
    ):
        self.mesh = mesh
        self.objects = objects
        self.schedule = schedule
        # With degraded_mode on (the default), storage faults that
        # survive the retry policy degrade the answer (redundant bound
        # fallback, degraded_reason="storage") instead of raising; off
        # restores fail-stop semantics for circuit-breaker style
        # supervision.
        self.degraded_mode = bool(degraded_mode)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.ranker = DistanceRanker(
            mesh, dmtm, msdn, schedule, options, stats=stats,
            tracer=self.tracer, bound_cache=bound_cache,
            profiler=self.profiler, landmarks=landmarks,
        )
        self.stats = stats
        self.disk = disk if disk is not None else DiskModel()

    def query(
        self, query, k: int, budget: QueryBudget | None = None
    ) -> QueryResult:
        """Answer the sk-NN query at a mesh vertex or an
        :class:`repro.core.embedding.EmbeddedQuery` point.

        ``budget`` optionally bounds the query's resources
        (:class:`repro.core.budget.QueryBudget`).  An exhausted budget
        degrades gracefully: refinement stops at the current
        resolution and the result carries ``degraded=True`` plus a
        sound ``max_error`` — it never raises.
        """
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if isinstance(query, EmbeddedQuery):
            query_vertex = min(query.anchors, key=lambda a: a[1])[0]
        else:
            if not 0 <= query < self.mesh.num_vertices:
                raise QueryError(f"query vertex {query} out of range")
            query_vertex = int(query)
        if k > len(self.objects):
            raise QueryError(
                f"k={k} exceeds the {len(self.objects)} stored objects"
            )
        io_before = self.stats.snapshot() if self.stats is not None else None
        cpu_start = time.process_time()
        tracker = (
            budget.tracker(self.stats)
            if budget is not None and not budget.unlimited
            else None
        )

        scope = (
            deadline_scope(tracker.deadline)
            if tracker is not None and tracker.deadline is not None
            else nullcontext()
        )
        with self.tracer.span(
            "mr3.query", query_vertex=query_vertex, k=k,
            schedule=self.schedule.name,
        ) as root, scope:
            q_pos, anchors = source_of(self.mesh, query)
            q_xy = q_pos[:2]

            # Step 1: 2D k-NN filter.
            with self.tracer.span("mr3.knn_2d", k=k) as sp:
                with self.profiler.phase("spatial-filter"):
                    c1_ids = self.objects.knn_2d(q_xy, k)
                sp.set_attribute("candidates", len(c1_ids))

            # Step 2: rank C1 to get a tight ub for the k-th neighbour.
            with self.tracer.span("mr3.filter", candidates=len(c1_ids)):
                cands1 = self.ranker.make_candidates(c1_ids, self.objects)
                out1 = self.ranker.rank(
                    query,
                    cands1,
                    k,
                    tighten_kth=self.ranker.options.filter_tighten,
                    phase="filter",
                    budget=tracker,
                    min_levels=1,
                    storage_fallback=self.degraded_mode,
                )
            radius = out1.kth_ub
            if not math.isfinite(radius):
                if not (self.degraded_mode and out1.storage_degraded):
                    raise QueryError(
                        "could not bound the k-th neighbour; "
                        "is the terrain connected?"
                    )
                radius = self._conservative_radius(anchors, cands1, k)

            # Step 3: 2D range query with the step-2 radius.
            with self.tracer.span("mr3.range_2d", radius=radius) as sp:
                with self.profiler.phase("spatial-filter"):
                    c2_ids = self.objects.range_2d(q_xy, radius)
                sp.set_attribute("candidates", len(c2_ids))

            # Step 4: rank C2, reusing the intervals from step 2.
            with self.tracer.span("mr3.ranking", candidates=len(c2_ids)):
                known: dict[int, Candidate] = {
                    c.object_id: c for c in cands1
                }
                cands2 = [
                    known.get(obj)
                    or self.ranker.make_candidates([obj], self.objects)[0]
                    for obj in c2_ids
                ]
                out2 = self.ranker.rank(
                    query, cands2, k, phase="ranking",
                    budget=tracker, min_levels=0,
                    storage_fallback=self.degraded_mode,
                )

        cpu_seconds = time.process_time() - cpu_start
        metrics = QueryMetrics(
            cpu_seconds=cpu_seconds,
            iterations_filter=out1.iterations,
            iterations_ranking=out2.iterations,
            candidates_examined=len(cands2),
        )
        if io_before is not None:
            delta = self.stats.delta_since(io_before)
            metrics.pages_accessed = delta.physical_reads
            metrics.logical_reads = delta.logical_reads
            metrics.reads_by_class = delta.physical_by_class
            metrics.io_seconds = self.disk.io_seconds(delta)

        winners = out2.winners
        budget_degraded = (
            out1.budget_exhausted or out2.budget_exhausted
        ) and not out2.converged
        storage_degraded = out1.storage_degraded or out2.storage_degraded
        degraded = budget_degraded or storage_degraded
        degraded_reason = (
            "storage" if storage_degraded
            else ("budget" if degraded else None)
        )
        max_error = 0.0
        if degraded and winners:
            # Sound per-query error bound for the anytime answer.  The
            # true k-th distance d_k is (a) at most the k-th reported
            # upper bound (each reported object's true distance is at
            # most its ub) and (b) at least the k-th smallest lower
            # bound over the whole step-4 candidate set (which
            # contains the true k-NN: the step-3 radius is a genuine
            # upper bound on d_k even when the filter was truncated).
            # The reported answer therefore overshoots d_k by at most
            # kth_ub - kth_lb.
            lbs = sorted(c.lb for c in out2.all_candidates)
            kth_lb = lbs[k - 1] if len(lbs) >= k else 0.0
            max_error = max(0.0, winners[-1].ub - kth_lb)
        winner_ids = {c.object_id for c in winners}
        rest = tuple(
            sorted(
                (c.object_id, float(c.lb))
                for c in out2.all_candidates
                if c.object_id not in winner_ids
            )
        )
        return QueryResult(
            query_vertex=query_vertex,
            k=k,
            object_ids=[c.object_id for c in winners],
            intervals=[(c.lb, c.ub) for c in winners],
            metrics=metrics,
            method=self.schedule.name,
            converged=out2.converged,
            filter_trace=out1.trace or [],
            ranking_trace=out2.trace or [],
            root_span=root if isinstance(root, Span) else None,
            degraded=degraded,
            max_error=max_error,
            budget_reason=tracker.exhausted_reason if tracker else None,
            degraded_reason=degraded_reason,
            rest=rest,
        )

    def _conservative_radius(self, anchors, cands1, k: int) -> float:
        """Sound step-3 radius when storage faults left the filter
        with no finite k-th upper bound.

        Preferred source: the landmark concatenation upper bound
        (every term is a genuine surface-path length, and landmark
        tables live in memory — immune to page faults).  Last resort:
        ``max anchor offset + total mesh edge length`` — any shortest
        path on a connected mesh uses each edge at most once, so the
        sum of all edge lengths bounds dS from any anchor, and the
        anchor offset bridges the query point to that anchor.
        """
        if self.ranker.landmarks is not None:
            radius = self.ranker.landmarks.kth_upper_bound(
                anchors, [c.vertex for c in cands1], k
            )
            if math.isfinite(radius):
                return radius
        worst_offset = max(offset for _vertex, offset in anchors)
        return worst_offset + float(np.sum(self.mesh.edge_lengths))
