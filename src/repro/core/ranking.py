"""Surface distance ranking (paper §4.2) — the filter engine shared by
MR3's steps 2 and 4.

Given the query vertex and a set of candidates, walk a resolution
schedule; at every iteration

1. build each still-active candidate's **search region** — the whole
   terrain on the first pass, afterwards the ellipse with foci
   (q', p') and constant ub(q, p), optionally *refined* to the
   descendant MBRs of the previous upper-bound path;
2. **integrate I/O regions** of candidates whose region MBRs overlap
   heavily, fetch each merged region once, and estimate per
   candidate with the already-fetched data;
3. tighten ``ub`` from the DMTM network (running min — the monotone
   improvement property) and ``lb`` from the MSDN (running max),
   using the *dummy lower bound* corridor test to skip full SDN
   passes that provably cannot change the classification;
4. classify candidates (VA-file rule); stop when the k-th neighbour
   is certain or the schedule is exhausted.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.core.bounds import Candidate, classify_candidates
from repro.core.embedding import source_of
from repro.core.regions import integrate_io_regions
from repro.errors import QueryError, StorageError
from repro.geodesic.deadline import DeadlineExceeded
from repro.geometry.ellipse import EllipseRegion
from repro.geometry.primitives import BoundingBox
from repro.obs.context import active_registry
from repro.obs.events import LevelEvent
from repro.obs.profile import NULL_PROFILER
from repro.obs.tracing import NULL_TRACER


def _anchors_key(anchors) -> tuple:
    """Hashable, type-normalized form of a query's (vertex, offset)
    anchors, for bound-cache keys."""
    return tuple((int(v), float(off)) for v, off in anchors)


def _structure_scope(mesh, dmtm, msdn) -> tuple:
    """Identity token for the structures a cached bound was computed
    from.

    A :class:`repro.core.batch.BoundCache` can be shared across
    engines (the batch executor's shared cache, one sharded engine's
    many tile engines).  Bound keys like ``("net", resolution, box)``
    are only pure given the *structures*, so without this token two
    tile engines whose regions happen to coincide would alias each
    other's entries.  The token fingerprints the mesh geometry plus
    the DMTM/MSDN build parameters; it is memoized on the mesh object
    because hashing the vertex array is the expensive part.
    """
    token = getattr(mesh, "_bound_scope_token", None)
    if token is None:
        from repro.geodesic.landmarks import mesh_fingerprint

        token = mesh_fingerprint(mesh)[:16]
        mesh._bound_scope_token = token
    return (
        token,
        int(dmtm.steiner_per_edge),
        float(msdn.spacing),
        int(msdn.supersample),
    )


@dataclass(frozen=True)
class RankerOptions:
    """Tuning knobs of the ranking loop (all paper-described)."""

    integrate_io: bool = True
    integration_threshold: float = 0.8
    use_refined_region: bool = True
    use_dummy_lb: bool = True
    ellipse_slack: float = 1.001  # guard band against fp-tight ellipses
    filter_tighten: float = 0.8  # step-2 target accuracy for the k-th ub
    # When the schedule is exhausted with overlapping ranges, polish
    # the boundary candidates' upper bounds by Kanai-Suzuki selective
    # refinement — the paper allows 3 % error in surface distances
    # ("We allow 3% error in shortest surface calculation").
    final_polish: bool = True
    polish_tolerance: float = 0.03


@dataclass
class RankingOutcome:
    """Result of ranking a candidate set against the query."""

    winners: list  # the top-k candidates (by ub)
    all_candidates: list
    iterations: int
    converged: bool
    kth_ub: float
    # EXPLAIN trace: one typed LevelEvent per iteration with the
    # level's resolutions, candidate counts, k-th bound state and the
    # page I/O attributed to that level (see repro.obs.events).
    trace: list = None
    # True when a query budget stopped refinement before the schedule
    # (or the classification rule) was done — the intervals are sound
    # but looser than an unbudgeted run would produce.
    budget_exhausted: bool = False
    # True when at least one DMTM/MSDN region fetch failed with a
    # StorageError and the loop fell back to its redundant bound
    # sources (stale bounds, landmarks, per-candidate salvage).  The
    # intervals are still sound — skipping a tightening pass can only
    # leave bounds looser, never wrong.
    storage_degraded: bool = False


class _StorageFallback:
    """Per-rank record of region fetches lost to storage faults.

    Passed down into the bound-update helpers; its presence enables
    the catch-and-skip fallback (a ``None`` fallback preserves the
    historical raise-through behaviour for ``degraded_mode=False``
    engines).
    """

    __slots__ = ("events", "salvaged")

    def __init__(self):
        self.events: list[tuple[str, float, str]] = []
        self.salvaged = 0

    def note(self, source: str, resolution: float, exc: Exception) -> None:
        self.events.append((source, float(resolution), str(exc)))

    @property
    def triggered(self) -> bool:
        return bool(self.events)


@dataclass
class _IterationPlan:
    """Per-candidate regions for one iteration."""

    io_regions: list  # MBR per active candidate (None = whole terrain)
    search_regions: list  # list-of-boxes per candidate (None = whole)


class DistanceRanker:
    """Ranks candidates by surface-distance intervals over a schedule."""

    def __init__(
        self,
        mesh,
        dmtm,
        msdn,
        schedule,
        options: RankerOptions | None = None,
        stats=None,
        tracer=None,
        bound_cache=None,
        profiler=None,
        landmarks=None,
    ):
        self.mesh = mesh
        self.dmtm = dmtm
        self.msdn = msdn
        self.schedule = schedule
        # Optional repro.geodesic.landmarks.LandmarkIndex — a third
        # lower-bound source alongside Euclidean and MSDN.  Its exact
        # -table triangle-inequality bounds fold into every
        # candidate's interval up front (lower bounds only tighten,
        # so intervals stay sound) and prune full MSDN passes for
        # candidates the landmark bound already rejects.  None keeps
        # the loop bit-identical to the landmark-free ranker.
        self.landmarks = landmarks
        self.options = options if options is not None else RankerOptions()
        # Shared IOStatistics: with it, every trace event carries the
        # logical/physical page delta attributed to its level.
        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Phase profiler (repro.obs.profile.Profiler): each level's
        # work lands under "interval-ranking", the DMTM/MSDN bound
        # updates under "bound-composition", the Kanai-Suzuki polish
        # under "refinement".  Disabled by default.
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        # Optional repro.core.batch.BoundCache.  Every bound the loop
        # computes is a pure function of (structures, anchors, target,
        # resolution, region); the cache memoizes those computations
        # across queries.  Page charging (touch_region) is never
        # skipped on a hit, so cached and uncached runs are identical
        # in results AND logical reads — the cache only saves CPU.
        self.bound_cache = bound_cache
        # Every cache key below carries this token so engines over
        # different structures can share one cache without aliasing.
        self._scope = _structure_scope(mesh, dmtm, msdn)

    # ------------------------------------------------------------------

    def make_candidates(self, object_ids, object_set) -> list[Candidate]:
        """Wrap object ids into ranking candidates."""
        return [
            Candidate(
                object_id=int(obj),
                vertex=object_set.vertex_of(int(obj)),
                position=tuple(object_set.position_of(int(obj))),
            )
            for obj in object_ids
        ]

    def rank(
        self,
        query,
        candidates: list[Candidate],
        k: int,
        tighten_kth: float = 0.0,
        phase: str = "rank",
        budget=None,
        min_levels: int = 1,
        storage_fallback: bool = True,
    ) -> RankingOutcome:
        """Run the multiresolution ranking loop.

        ``query`` is a mesh vertex id or an
        :class:`repro.core.embedding.EmbeddedQuery` (arbitrary
        on-surface point, anchored at its facet's vertices).

        ``tighten_kth`` keeps iterating after the set is decided until
        the k-th candidate's interval accuracy (lb/ub) reaches the
        target — MR3's step 2 "needs an extra step to calculate an as
        tight as possible upper bound for the k-th neighbour", which
        becomes the step-3 search radius.

        ``phase`` labels the emitted trace events and spans ("filter"
        for MR3 step 2, "ranking" for step 4).

        ``budget`` is an optional
        :class:`repro.core.budget.BudgetTracker` (passed per call, not
        stored, so one ranker can serve concurrent queries).  The
        check runs between levels: an exhausted budget stops
        refinement at the current resolution and the outcome is
        flagged ``budget_exhausted``.  The first ``min_levels`` levels
        always run — MR3's filter phase passes 1 so every candidate
        gets a finite upper bound (the step-3 radius and the degraded
        answer both need one), the ranking phase passes 0 because its
        candidates inherit step-2 intervals.

        ``storage_fallback`` (default True) turns region fetches lost
        to :class:`~repro.errors.StorageError` into degraded-mode
        events: the group's bound-tightening pass is skipped (stale
        intervals stay sound), individual candidates are salvaged
        through their own smaller regions where possible, and the
        outcome is flagged ``storage_degraded``.  With it off, the
        first storage failure propagates — the pre-degraded-mode
        behaviour the circuit breaker watches for.
        """
        if k < 1:
            raise QueryError("k must be >= 1")
        if not candidates:
            return RankingOutcome([], [], 0, True, float("inf"))
        q_pos, anchors = source_of(self.mesh, query)
        for cand in candidates:
            euclid = float(np.linalg.norm(q_pos - np.asarray(cand.position)))
            cand.interval.refine_lb(euclid)

        landmark_lbs = None
        landmark_kth = float("inf")
        if self.landmarks is not None:
            # Lazy indexes grow their exact table here, a bounded
            # number of rows per query (billed to the
            # "landmark-lazy-build" phase); eager indexes no-op.
            self.landmarks.ensure_progress()
            landmark_lbs = self._apply_landmark_bounds(anchors, candidates)
            # Landmark concatenation distances are genuine surface
            # paths, so the k-th smallest is a valid rejection
            # threshold from level 0 — before the DMTM has produced
            # any finite upper bound.  It only gates *work-skipping*
            # (dummy tests and landmark prunes), never the intervals
            # themselves: folding landmark values into candidate
            # intervals would let a concatenation path become the
            # final fill key at exhausted-ambiguity fills, breaking
            # answer-set identity with landmarks-off runs (KS polish
            # is a stopping rule, not a hard bound, so a landmark ub
            # can legitimately undercut it).  Gating, by contrast, is
            # identity-safe by construction: a skipped refinement
            # leaves a stale-but-sound bound behind.
            with self.profiler.phase("landmark-bounds"):
                landmark_kth = self.landmarks.kth_upper_bound(
                    anchors, [c.vertex for c in candidates], k
                )
        kth_ub_estimate = landmark_kth

        active = list(candidates)
        iterations = 0
        converged = False
        exhausted = False
        fallback = _StorageFallback() if storage_fallback else None
        trace: list[LevelEvent] = []
        last_level = len(self.schedule) - 1
        for level, (res_u, res_l) in enumerate(self.schedule.levels()):
            if budget is not None and level >= min_levels and budget.check():
                exhausted = True
                break
            iterations += 1
            active_before = len(active)
            io_before = self.stats.snapshot() if self.stats is not None else None
            cpu_before = time.process_time()
            try:
                verdict, logical, physical, by_class = self._run_level(
                    phase, level, res_u, res_l, q_pos, anchors, active,
                    candidates, k, kth_ub_estimate, landmark_lbs,
                    last_level, io_before, active_before, fallback,
                )
            except DeadlineExceeded:
                # A kernel noticed the wall-clock deadline mid-level.
                # Partial bound updates are sound (bounds only
                # tighten), so stop refining and degrade.
                exhausted = True
                if budget is not None:
                    budget.note_mid_level_stop()
                break
            # Composed gate: the classified kth_ub comes from
            # DMTM/MSDN-sourced intervals; the landmark concatenation
            # estimate is an independent upper bound on the same k-th
            # distance.  Their min is admissible and strictly tightens
            # the prune/dummy work-skipping threshold whenever the
            # landmark tables beat the current refinement level.
            kth_ub_estimate = min(verdict.kth_ub, landmark_kth)
            trace.append(
                LevelEvent(
                    phase=phase,
                    level=level,
                    dmtm_resolution=res_u,
                    msdn_resolution=res_l,
                    active_before=active_before,
                    active_after=len(verdict.active),
                    kth_lb=verdict.kth_lb,
                    kth_ub=verdict.kth_ub,
                    done=verdict.done,
                    cpu_seconds=time.process_time() - cpu_before,
                    logical_reads=logical,
                    physical_reads=physical,
                    reads_by_class=by_class,
                )
            )
            if verdict.done and verdict.kth_accuracy >= tighten_kth:
                converged = True
                break
            if verdict.done:
                # Set decided but the k-th bound still loose: keep
                # refining only the current winners.
                active = sorted(
                    verdict.winners, key=lambda c: (c.ub, c.object_id)
                )[:k]
                continue
            active = verdict.active
            if not active:
                # Everyone classified individually; the set is decided.
                converged = True
                break
        final = classify_candidates(candidates, k)
        if not final.done and self.options.final_polish and not exhausted:
            try:
                with self.tracer.span(
                    "rank.polish", phase=phase, ambiguous=len(final.active)
                ):
                    with self.profiler.phase("refinement"):
                        self._polish_boundary(anchors, candidates, final, k)
            except DeadlineExceeded:
                exhausted = True
                if budget is not None:
                    budget.note_mid_level_stop()
            final = classify_candidates(candidates, k)
        winners = sorted(final.winners, key=lambda c: (c.ub, c.object_id))[:k]
        if len(winners) < k:
            # Schedule exhausted with residual ambiguity: certain
            # winners keep their slots (their guarantee is monotone —
            # lower bounds only grow), and the remaining slots are
            # filled by upper bound (at the pathnet level ub is the
            # surface distance by the paper's definition).  Winners
            # may carry stale, loose ubs from the iteration they were
            # decided at, so they must never compete by ub.
            taken = {id(c) for c in winners}
            pool = sorted(
                (c for c in candidates if id(c) not in taken),
                key=lambda c: (c.ub, c.object_id),
            )
            winners.extend(pool[: k - len(winners)])
            winners.sort(key=lambda c: (c.ub, c.object_id))
        storage_degraded = fallback is not None and fallback.triggered
        if storage_degraded:
            registry = active_registry()
            registry.counter("ranking.storage_fallbacks_total").add(
                len(fallback.events)
            )
            registry.counter("ranking.storage_salvages_total").add(
                fallback.salvaged
            )
        return RankingOutcome(
            winners=winners,
            all_candidates=candidates,
            iterations=iterations,
            converged=converged or final.done,
            kth_ub=winners[-1].ub if winners else float("inf"),
            trace=trace,
            budget_exhausted=exhausted,
            storage_degraded=storage_degraded,
        )

    def _run_level(
        self, phase, level, res_u, res_l, q_pos, anchors, active,
        candidates, k, kth_ub_estimate, landmark_lbs, last_level,
        io_before, active_before, fallback,
    ):
        """One refinement level: plan regions, tighten both bound
        families, classify.  Returns (verdict, level I/O deltas)."""
        with self.tracer.span(
            "rank.level", phase=phase, level=level,
            dmtm_resolution=res_u, msdn_resolution=res_l,
        ) as span:
            with self.profiler.phase("interval-ranking"):
                # At the final level the ub becomes the ranking key
                # when ranges still overlap, so estimate it over
                # the full ellipse rather than the refined corridor.
                plan = self._plan_regions(
                    q_pos, active, level, refined=level < last_level
                )
                with self.profiler.phase("bound-composition"):
                    self._update_upper_bounds(
                        anchors, active, plan, res_u, fallback=fallback
                    )
                    self._update_lower_bounds(
                        q_pos, active, plan, res_l, kth_ub_estimate,
                        landmark_lbs=landmark_lbs, fallback=fallback,
                    )
                verdict = classify_candidates(candidates, k)
            if io_before is not None:
                io_delta = self.stats.delta_since(io_before)
                logical = io_delta.logical_reads
                physical = io_delta.physical_reads
                by_class = io_delta.physical_by_class
            else:
                logical = physical = 0
                by_class = {}
            span.set_attribute("active_before", active_before)
            span.set_attribute("active_after", len(verdict.active))
            span.set_attribute("physical_reads", physical)
        return verdict, logical, physical, by_class

    def rank_within(
        self,
        query,
        candidates: list[Candidate],
        radius: float,
        storage_fallback: bool = True,
    ) -> tuple[list[Candidate], bool]:
        """Surface *range query* classification: which candidates have
        ``dS(q, p) <= radius``?

        The paper's conclusion notes the DMTM/MSDN framework supports
        "other distance comparison based queries, such as range
        queries"; this is that query.  Same refinement loop as
        :meth:`rank`, but candidates classify against the fixed radius
        (in when ub <= radius, out when lb > radius).

        Returns ``(inside, certain)`` — ``certain`` is False when the
        schedule was exhausted with candidates still straddling the
        radius (those are classified by upper bound, the paper's
        at-max-resolution convention), or when a storage fault made
        the loop skip a bound source (``storage_fallback``, same
        semantics as :meth:`rank`).
        """
        if radius < 0:
            raise QueryError("radius must be non-negative")
        if not candidates:
            return [], True
        q_pos, anchors = source_of(self.mesh, query)
        for cand in candidates:
            euclid = float(np.linalg.norm(q_pos - np.asarray(cand.position)))
            cand.interval.refine_lb(euclid)

        landmark_lbs = None
        if self.landmarks is not None:
            self.landmarks.ensure_progress()
            landmark_lbs = self._apply_landmark_bounds(anchors, candidates)

        fallback = _StorageFallback() if storage_fallback else None
        active = [c for c in candidates if c.lb <= radius]
        last_level = len(self.schedule) - 1
        for level, (res_u, res_l) in enumerate(self.schedule.levels()):
            if not active:
                break
            with self.profiler.phase("interval-ranking"):
                plan = self._plan_regions(
                    q_pos, active, level, refined=level < last_level
                )
                with self.profiler.phase("bound-composition"):
                    self._update_upper_bounds(
                        anchors, active, plan, res_u, fallback=fallback
                    )
                    self._update_lower_bounds(
                        q_pos, active, plan, res_l, radius,
                        landmark_lbs=landmark_lbs, fallback=fallback,
                    )
                active = [
                    c for c in active if c.lb <= radius < c.ub
                ]
        if active and self.options.final_polish:
            # Straddling candidates get the Kanai-Suzuki polish so the
            # in/out decision is made with ~3 %-accurate upper bounds.
            with self.profiler.phase("refinement"):
                for cand in active:
                    best = cand.ub
                    for anchor_vertex, offset in anchors:
                        best = min(
                            best,
                            offset
                            + self._ks_distance(anchor_vertex, cand.vertex),
                        )
                    cand.interval.refine_ub(best)
            active = [c for c in active if c.lb <= radius < c.ub]
        inside = [c for c in candidates if c.ub <= radius]
        certain = not active and not (fallback is not None and fallback.triggered)
        return sorted(inside, key=lambda c: (c.ub, c.object_id)), certain

    def _polish_boundary(self, anchors, candidates, verdict, k: int) -> None:
        """Tighten the upper bounds of candidates straddling the k-th
        boundary by Kanai-Suzuki selective refinement (3 % default).

        The schedule's pathnet level uses the paper's one Steiner
        point per edge, which on very rugged terrain can leave 10-20 %
        slack; selectively refining just the ambiguous candidates is
        exactly how the paper's EA reaches its 97 % accuracy.
        """
        # Ambiguous candidates plus the current winners they compete
        # with (a winner's stale ub may be the blocking range).
        targets = list(verdict.active) + [
            c for c in verdict.winners if c.interval.accuracy < 0.9
        ]
        for cand in targets:
            best = cand.ub
            for anchor_vertex, offset in anchors:
                value = offset + self._ks_distance(anchor_vertex, cand.vertex)
                best = min(best, value)
            cand.interval.refine_ub(best)

    # ------------------------------------------------------------------
    # region planning
    # ------------------------------------------------------------------

    def _plan_regions(
        self, q_pos, active: list[Candidate], level: int, refined: bool = True
    ) -> _IterationPlan:
        opts = self.options
        io_regions: list[BoundingBox | None] = []
        search_regions: list = []
        for cand in active:
            if not math.isfinite(cand.ub):
                io_regions.append(None)
                search_regions.append(None)
                continue
            ellipse = EllipseRegion(
                q_pos[:2], np.asarray(cand.position)[:2],
                cand.ub * opts.ellipse_slack,
            )
            io_box = ellipse.mbr()
            io_regions.append(io_box)
            if refined and opts.use_refined_region and cand.ub_path_keys:
                boxes = self.dmtm.path_region(cand.ub_path_keys)
                search_regions.append(boxes)
            else:
                search_regions.append([io_box])
        return _IterationPlan(io_regions=io_regions, search_regions=search_regions)

    # ------------------------------------------------------------------
    # upper bounds
    # ------------------------------------------------------------------

    def _update_upper_bounds(
        self,
        anchors,
        active: list[Candidate],
        plan: _IterationPlan,
        res_u: float,
        fallback: _StorageFallback | None = None,
    ) -> None:
        """Tighten upper bounds for the active candidates.

        ``anchors`` is a tuple of (vertex, offset) pairs describing
        the query source (a single (v, 0) for a vertex query; the
        facet vertices with in-facet offsets for an embedded point).
        """
        groups = self._group_for_io(active, plan.io_regions)
        for group_box, members in groups:
            # One fetch per integrated region (page I/O is charged
            # here unconditionally — a bound-cache hit below never
            # changes the read accounting).
            try:
                self.dmtm.touch_region(res_u, group_box)
            except StorageError as exc:
                if fallback is None:
                    raise
                # The group's region is unreadable: skip its ub pass
                # (stale upper bounds remain genuine path lengths, so
                # the intervals stay sound) and try each member's own
                # smaller region, which may avoid the bad pages.
                fallback.note("dmtm", res_u, exc)
                self._salvage_upper_bounds(
                    anchors, active, plan, res_u, members, group_box, fallback
                )
                continue
            refinables = []
            for idx in members:
                cand = active[idx]
                boxes = plan.search_regions[idx]
                if boxes is None or boxes == [plan.io_regions[idx]]:
                    refinables.append(cand)
                    continue
                # Per-candidate refined corridor (CPU optimisation):
                result = self._estimate_ub_refined(anchors, cand, boxes, res_u)
                if result is None:
                    refinables.append(cand)
                else:
                    value, keys = result
                    cand.interval.refine_ub(value)
                    cand.ub_path_keys = keys
            if refinables:
                combined = self._combined_ubs_over_region(
                    anchors, [c.vertex for c in refinables], res_u, group_box
                )
                for cand in refinables:
                    result = combined.get(cand.vertex)
                    if result is not None:
                        value, keys = result
                        cand.interval.refine_ub(value)
                        cand.ub_path_keys = keys

    def _salvage_upper_bounds(
        self, anchors, active, plan, res_u, members, group_box, fallback
    ) -> None:
        """Per-candidate ub recovery after a failed group fetch.

        Each member retries through its own (smaller) I/O region —
        which may miss the quarantined pages the merged region hit.
        Members without a finer region than the group's (whole-terrain
        fetches, single-member groups) have nothing new to try.
        """
        for idx in members:
            box = plan.io_regions[idx]
            if box is None or box == group_box:
                continue
            cand = active[idx]
            try:
                self.dmtm.touch_region(res_u, box)
            except StorageError:
                continue
            combined = self._combined_ubs_over_region(
                anchors, [cand.vertex], res_u, box
            )
            result = combined.get(cand.vertex)
            if result is not None:
                value, keys = result
                cand.interval.refine_ub(value)
                cand.ub_path_keys = keys
                fallback.salvaged += 1

    def _combined_ubs_over_region(
        self, anchors, target_vertices, res_u: float, group_box
    ) -> dict:
        """Combined upper bounds for targets sharing one fetched
        region, memoized per (anchors, target, resolution, region).

        Landmark concatenation bounds are deliberately NOT folded into
        these per-candidate values: interval ubs must stay
        DMTM/KS-sourced so a landmark run fills exhausted-ambiguity
        slots with the same ``(ub, object_id)`` keys as a
        landmarks-off run.  Landmark upper bounds instead compose with
        the classified kth_ub on the work-skipping gate in
        :meth:`rank` (see ``landmark_kth``), which tightens pruning
        without touching the fill order.
        """
        cache = self.bound_cache
        if cache is None:
            shared = self.dmtm.extract_network(
                res_u, group_box, charge_io=False
            )
            return self._combined_ubs(anchors, target_vertices, shared)
        anchors_key = _anchors_key(anchors)
        out: dict = {}
        missing: list[int] = []
        for vertex in dict.fromkeys(target_vertices):
            key = ("ub", self._scope, anchors_key, vertex, res_u, group_box)
            found, value = cache.lookup(key)
            if found:
                if value is not None:
                    out[vertex] = value
            else:
                missing.append(vertex)
        if missing:
            shared = self._shared_network(res_u, group_box)
            computed = self._combined_ubs(anchors, missing, shared)
            for vertex in missing:
                value = computed.get(vertex)
                cache.store(
                    ("ub", self._scope, anchors_key, vertex, res_u, group_box),
                    value,
                )
                if value is not None:
                    out[vertex] = value
        return out

    def _shared_network(self, res_u: float, group_box):
        """Extract (or reuse) the group's shared network.  Extraction
        is pure given (resolution, region), and the KeyedGraph is only
        read afterwards, so one instance can serve many queries."""
        cache = self.bound_cache
        if cache is None:
            return self.dmtm.extract_network(res_u, group_box, charge_io=False)
        key = ("net", self._scope, res_u, group_box)
        found, network = cache.lookup_network(key)
        if not found:
            network = self.dmtm.extract_network(
                res_u, group_box, charge_io=False
            )
            cache.store_network(key, network)
        return network

    def _combined_ubs(self, anchors, target_vertices, network):
        """Best upper bound per target over all source anchors:
        min over anchors v of (offset_v + ub(v, target)).  On the CSR
        kernels the pathnet level settles every anchor and candidate
        in one multi-source search (see DMTM.upper_bounds_multi)."""
        return self.dmtm.upper_bounds_multi(anchors, target_vertices, network)

    def _estimate_ub_refined(self, anchors, cand, boxes, res_u):
        """Try the refined corridor, widening it (the paper doubles
        each vertex MBR) before falling back to the shared network."""
        cache = self.bound_cache
        if cache is not None:
            key = (
                "ubr", self._scope, _anchors_key(anchors), cand.vertex, res_u,
                tuple(boxes),
            )
            found, value = cache.lookup(key)
            if found:
                return value
            value = self._estimate_ub_refined_uncached(
                anchors, cand, boxes, res_u
            )
            cache.store(key, value)
            return value
        return self._estimate_ub_refined_uncached(anchors, cand, boxes, res_u)

    def _estimate_ub_refined_uncached(self, anchors, cand, boxes, res_u):
        margin = 0.0
        for _attempt in range(3):
            region = [b.expanded(margin) if margin else b for b in boxes]
            network = self.dmtm.extract_network(res_u, region, charge_io=False)
            best = None
            for anchor_vertex, offset in anchors:
                result = self.dmtm.upper_bound(
                    anchor_vertex, cand.vertex, res_u, network=network
                )
                if result is not None:
                    value = offset + result.value
                    if best is None or value < best[0]:
                        best = (value, result.path_keys)
            if best is not None:
                return best
            base = max(b.extents.max() for b in boxes)
            margin = base if margin == 0.0 else margin * 2.0
        return None

    # ------------------------------------------------------------------
    # lower bounds
    # ------------------------------------------------------------------

    def _apply_landmark_bounds(self, anchors, candidates) -> dict:
        """Fold the landmark triangle-inequality lower bounds into the
        candidate intervals (paper-external ALT extension).

        The bounds come from exact surface-distance tables, so they
        are admissible; folding them in can only *raise* lower bounds,
        which keeps every downstream classification sound.  Returns
        ``{id(candidate): bound}`` so :meth:`_update_lower_bounds` can
        prune full MSDN passes the landmark bound already decides.
        """
        with self.profiler.phase("landmark-bounds"):
            vertices = [c.vertex for c in candidates]
            bounds = self.landmarks.anchored_lower_bounds(anchors, vertices)
            hits = 0
            out: dict = {}
            for cand, value in zip(candidates, bounds):
                value = float(value)
                out[id(cand)] = value
                # In exact arithmetic value <= dS <= ub always; clamp
                # against fp drift on already-polished ubs so the
                # interval never inverts.  Admissibility itself is
                # enforced by the landmark_admissible oracle.
                clamped = min(value, cand.ub)
                if clamped > cand.lb:
                    hits += 1
                    cand.interval.refine_lb(clamped)
            if hits:
                active_registry().counter("landmark.hits").add(hits)
        return out

    def _update_lower_bounds(
        self,
        q_pos,
        active: list[Candidate],
        plan: _IterationPlan,
        res_l: float,
        kth_ub_estimate: float,
        landmark_lbs: dict | None = None,
        fallback: _StorageFallback | None = None,
    ) -> None:
        opts = self.options
        prunes = 0
        groups = self._group_for_io(active, plan.io_regions)
        for group_box, members in groups:
            axes = tuple(
                sorted(
                    {
                        self.msdn.choose_axis(q_pos, active[idx].position)
                        for idx in members
                    }
                )
            )
            try:
                self.msdn.touch_region(res_l, group_box, axes=axes)
            except StorageError as exc:
                if fallback is None:
                    raise
                # Skipping an MSDN pass leaves the Euclidean/landmark
                # lower bounds in place — lower bounds only ever
                # tighten, so a stale one is still admissible.
                fallback.note("msdn", res_l, exc)
                self._salvage_lower_bounds(
                    q_pos, active, plan, res_l, members, group_box, fallback
                )
                continue
            # Dummy-corridor screening first, then one batched MSDN
            # pass for the survivors.  Each bound is a pure function
            # of (source, target, resolution, region) with
            # charge_io=False, so hoisting them out of the loop
            # changes nothing observable.
            pending: list[tuple] = []  # (candidate, roi_box)
            for idx in members:
                cand = active[idx]
                roi = plan.io_regions[idx]
                roi_arg = [roi] if roi is not None else None
                if (
                    landmark_lbs is not None
                    and math.isfinite(kth_ub_estimate)
                    and landmark_lbs.get(id(cand), 0.0) >= kth_ub_estimate
                ):
                    # The landmark bound (already folded into the
                    # interval up front) rejects this candidate on its
                    # own; the MSDN pass could only raise the lb
                    # further, so skipping it leaves a stale-but-sound
                    # bound and the classification is unchanged.
                    prunes += 1
                    continue
                if (
                    opts.use_dummy_lb
                    and cand.lb_path_keys
                    and math.isfinite(kth_ub_estimate)
                ):
                    corridor = self.msdn.corridor_from_path(
                        cand.lb_path_keys, cand.lb_path_resolution
                    )
                    dummy = self.msdn.lower_bound(
                        q_pos,
                        cand.position,
                        res_l,
                        roi=roi_arg,
                        corridor=corridor,
                        charge_io=False,
                    )
                    # Even the optimistic corridor bound cannot reach
                    # the rejection threshold: the true lb (which is
                    # smaller) cannot either, so skip the full pass.
                    if dummy.value < kth_ub_estimate:
                        continue
                pending.append((cand, roi))
            results = self._lower_bounds_batch(q_pos, pending, res_l)
            for (cand, _roi), result in zip(pending, results):
                cand.interval.refine_lb(result.value)
                cand.lb_path_keys = result.path_keys
                cand.lb_path_resolution = result.resolution
        if prunes:
            active_registry().counter("landmark.prunes").add(prunes)

    def _salvage_lower_bounds(
        self, q_pos, active, plan, res_l, members, group_box, fallback
    ) -> None:
        """Per-candidate lb recovery after a failed group fetch (the
        lower-bound twin of :meth:`_salvage_upper_bounds`)."""
        for idx in members:
            roi = plan.io_regions[idx]
            if roi is None or roi == group_box:
                continue
            cand = active[idx]
            axes = (self.msdn.choose_axis(q_pos, cand.position),)
            try:
                self.msdn.touch_region(res_l, roi, axes=axes)
            except StorageError:
                continue
            results = self._lower_bounds_batch(q_pos, [(cand, roi)], res_l)
            result = results[0]
            cand.interval.refine_lb(result.value)
            cand.lb_path_keys = result.path_keys
            cand.lb_path_resolution = result.resolution
            fallback.salvaged += 1

    def _lb_cache_key(self, q_pos, position, res_l: float, roi):
        return (
            "lb",
            self._scope,
            tuple(float(c) for c in q_pos),
            tuple(float(c) for c in position),
            res_l,
            roi,
        )

    def _lower_bounds_batch(self, q_pos, pending, res_l: float) -> list:
        """Full MSDN lower bounds for ``[(candidate, roi_box), ...]``,
        cache-aware, computing all misses through one batched MSDN
        call (per-call setup hoisted, same values)."""
        cache = self.bound_cache
        rois = [[roi] if roi is not None else None for _cand, roi in pending]
        if cache is None:
            return self.msdn.lower_bound_batch(
                q_pos,
                [cand.position for cand, _roi in pending],
                res_l,
                rois=rois,
                charge_io=False,
            )
        results: list = [None] * len(pending)
        missing: list[int] = []
        for i, (cand, roi) in enumerate(pending):
            key = self._lb_cache_key(q_pos, cand.position, res_l, roi)
            found, result = cache.lookup(key)
            if found:
                results[i] = result
            else:
                missing.append(i)
        if missing:
            computed = self.msdn.lower_bound_batch(
                q_pos,
                [pending[i][0].position for i in missing],
                res_l,
                rois=[rois[i] for i in missing],
                charge_io=False,
            )
            for i, result in zip(missing, computed):
                cand, roi = pending[i]
                cache.store(
                    self._lb_cache_key(q_pos, cand.position, res_l, roi), result
                )
                results[i] = result
        return results

    def _lower_bound(self, q_pos, position, res_l: float, roi):
        """Full MSDN lower bound, memoized per
        (source, target, resolution, region)."""
        roi_arg = [roi] if roi is not None else None
        cache = self.bound_cache
        if cache is None:
            return self.msdn.lower_bound(
                q_pos, position, res_l, roi=roi_arg, charge_io=False
            )
        key = self._lb_cache_key(q_pos, position, res_l, roi)
        found, result = cache.lookup(key)
        if not found:
            result = self.msdn.lower_bound(
                q_pos, position, res_l, roi=roi_arg, charge_io=False
            )
            cache.store(key, result)
        return result

    def _ks_distance(self, anchor_vertex: int, vertex: int) -> float:
        """Kanai-Suzuki polish distance, memoized per (pair, tolerance)
        — the single most expensive repeated computation in a batch of
        overlapping queries."""
        from repro.geodesic.kanai_suzuki import kanai_suzuki_distance

        tolerance = self.options.polish_tolerance
        cache = self.bound_cache
        if cache is None:
            return kanai_suzuki_distance(
                self.mesh, anchor_vertex, vertex, tolerance=tolerance
            )
        key = ("ks", self._scope, int(anchor_vertex), int(vertex), tolerance)
        found, value = cache.lookup(key)
        if not found:
            value = kanai_suzuki_distance(
                self.mesh, anchor_vertex, vertex, tolerance=tolerance
            )
            cache.store(key, value)
        return value

    # ------------------------------------------------------------------
    # I/O grouping
    # ------------------------------------------------------------------

    def _group_for_io(self, active, io_regions):
        """Group candidate indices by integrated I/O region.

        Returns a list of (region_or_None, member_indices).
        Candidates without a finite region (first iteration) share the
        whole-terrain fetch.
        """
        whole = [i for i, box in enumerate(io_regions) if box is None]
        boxed = [(i, box) for i, box in enumerate(io_regions) if box is not None]
        groups: list[tuple[BoundingBox | None, list[int]]] = []
        if whole:
            groups.append((None, whole))
        if boxed:
            if self.options.integrate_io:
                merged, assign = integrate_io_regions(
                    [box for _i, box in boxed],
                    threshold=self.options.integration_threshold,
                )
                buckets: dict[int, list[int]] = {}
                for (idx, _box), gid in zip(boxed, assign):
                    buckets.setdefault(gid, []).append(idx)
                for gid, members in sorted(buckets.items()):
                    groups.append((merged[gid], members))
            else:
                for idx, box in boxed:
                    groups.append((box, [idx]))
        return groups
