"""Baselines: exact (Chen-Han class) sk-NN and helpers for the EA
benchmark.

* :func:`exact_knn` — ground truth: exact geodesic distances from the
  query to every object (single window-propagation source, queried
  lazily nearest-first).  Used by tests to validate MR3/EA results
  and by Fig. 7 style comparisons.
* The EA benchmark itself is :class:`repro.core.mr3.MR3QueryProcessor`
  with ``ResolutionSchedule.preset("ea")`` — the paper builds EA from
  the same filter framework, just without multiresolution levels
  ("the benchmark algorithm also apply the same filter techniques as
  MR3").
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.geodesic.exact import ExactGeodesic


def exact_knn(
    mesh,
    objects,
    query_vertex: int,
    k: int,
    max_windows: int | None = None,
) -> list[tuple[int, float]]:
    """The true k nearest objects by exact surface distance.

    Returns ``[(object_id, dS), ...]`` ascending.  Cost is one exact
    geodesic propagation — the expensive thing MR3 exists to avoid —
    so keep meshes modest.
    """
    if k < 1:
        raise QueryError("k must be >= 1")
    if k > len(objects):
        raise QueryError(f"k={k} exceeds {len(objects)} objects")
    geo = ExactGeodesic(mesh, query_vertex, max_windows=max_windows)
    q_pos = mesh.vertices[query_vertex]
    # Query targets nearest-first (by Euclidean), so the lazy
    # propagation usually stops early.
    order = sorted(
        range(len(objects)),
        key=lambda obj: float(
            np.linalg.norm(q_pos - objects.position_of(obj))
        ),
    )
    results: list[tuple[int, float]] = []
    kth = float("inf")
    for obj in order:
        euclid = float(np.linalg.norm(q_pos - objects.position_of(obj)))
        if len(results) >= k and euclid >= kth:
            # dS >= dE >= kth: this and all later objects are out.
            break
        d = geo.distance_to(objects.vertex_of(obj))
        results.append((obj, d))
        if len(results) >= k:
            results.sort(key=lambda t: t[1])
            kth = results[k - 1][1]
    results.sort(key=lambda t: (t[1], t[0]))
    return results[:k]
