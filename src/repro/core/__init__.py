"""The paper's primary contribution: MR3 surface k-NN query
processing by multiresolution distance-range ranking.

Public entry points:

* :class:`SurfaceKNNEngine` — build DMTM + MSDN + object index over a
  terrain and answer sk-NN queries with MR3, the EA benchmark or the
  exact (Chen-Han style) brute force;
* :class:`ObjectSet` — object points on the surface (density in
  objects/km², the paper's unit);
* :class:`ResolutionSchedule` — the paper's step-length settings
  s = 1, 2, 3 plus the EA (no-multiresolution) schedule.
"""

from repro.core.bounds import DistanceInterval, Candidate, classify_candidates
from repro.core.objects import ObjectSet
from repro.core.schedule import ResolutionSchedule
from repro.core.regions import integrate_io_regions
from repro.core.ranking import DistanceRanker, RankerOptions, RankingOutcome
from repro.core.mr3 import MR3QueryProcessor, QueryResult
from repro.core.baseline import exact_knn
from repro.core.obstacles import obstacle_knn, steep_faces
from repro.core.network_baselines import ine_knn, ier_knn
from repro.core.embedding import EmbeddedQuery, embed_point
from repro.core.pairs import surface_closest_pair
from repro.core.engine import SurfaceKNNEngine
from repro.core.budget import BudgetTracker, QueryBudget
from repro.core.batch import (
    BatchError,
    BatchQuery,
    BatchQueryExecutor,
    BatchReport,
    BoundCache,
    CircuitBreaker,
    shared_bound_cache,
)

__all__ = [
    "DistanceInterval",
    "Candidate",
    "classify_candidates",
    "ObjectSet",
    "ResolutionSchedule",
    "integrate_io_regions",
    "DistanceRanker",
    "RankerOptions",
    "RankingOutcome",
    "MR3QueryProcessor",
    "QueryResult",
    "exact_knn",
    "obstacle_knn",
    "steep_faces",
    "ine_knn",
    "ier_knn",
    "EmbeddedQuery",
    "embed_point",
    "surface_closest_pair",
    "SurfaceKNNEngine",
    "QueryBudget",
    "BudgetTracker",
    "BatchError",
    "BatchQuery",
    "BatchQueryExecutor",
    "BatchReport",
    "BoundCache",
    "CircuitBreaker",
    "shared_bound_cache",
]
