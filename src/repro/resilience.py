"""repro.resilience — one import for the fault-tolerance surface.

The pieces live where they act (the injector and retry policy in
:mod:`repro.storage`, budgets and the circuit breaker in
:mod:`repro.core`), but hardening an engine touches all of them at
once, so this module re-exports the whole contract:

* **Fault model** — :class:`FaultInjector` (seeded schedule of
  transient read errors, silent corruption, latency spikes) attached
  to an engine's simulated disk; :class:`FaultEvent` / ``injector.log``
  is the ground-truth record of what was injected.
* **Detection & retry** — every page carries a CRC-32;
  :class:`RetryPolicy` bounds re-attempts with deterministic
  (simulated, never slept) backoff; :class:`FaultStats` on the page
  manager counts what was detected, retried and given up on;
  :class:`PageReadError` / :class:`PageCorruptionError` surface only
  once the policy is exhausted.
* **Budgets & degradation** — :class:`QueryBudget` caps a query's
  logical page reads and/or wall-clock seconds; an exhausted budget
  stops refinement at the current resolution and the
  ``QueryResult`` comes back ``degraded=True`` with sound intervals
  and a per-query ``max_error`` bound, never an exception.
* **Batch isolation** — :class:`BatchQueryExecutor` confines each
  member failure to a :class:`BatchError` record, and its
  :class:`CircuitBreaker` stops admitting queries after consecutive
  storage failures (and probes for recovery half-open, after a
  cooldown of refused admissions).
* **Degraded-mode execution** — when a read exhausts the retry
  policy, the page enters :class:`PageQuarantine` (later reads
  fail fast with :class:`QuarantinedPageError` until a probation
  probe readmits it) and the ranker substitutes redundant bound
  sources — stale-but-sound intervals, landmark bounds,
  per-candidate salvage — so queries come back ``degraded=True``
  with ``degraded_reason="storage"`` instead of raising.
  :func:`kill_random_pages` builds persistent-fault (kill-list)
  schedules for chaos testing; :class:`EngineHealth` folds the
  quarantine, fault counters and breaker into a
  healthy/degraded/failed verdict that batch admission consults.
  ``QueryBudget.max_seconds`` is additionally enforced inside the
  CSR kernels (:class:`DeadlineExceeded` is caught at level
  boundaries), so one pathological search cannot blow far past its
  deadline.

Example
-------
>>> from repro import bearhead_like
>>> from repro.core import SurfaceKNNEngine
>>> from repro.resilience import FaultInjector, QueryBudget, RetryPolicy
>>> engine = SurfaceKNNEngine.from_dem(
...     bearhead_like(size=17), density=8,
...     fault_injector=FaultInjector(seed=7, transient_rate=0.05),
...     retry_policy=RetryPolicy(max_attempts=6),
... )
>>> result = engine.query(40, k=3, budget=QueryBudget(max_pages=50))
>>> result.degraded, result.max_error >= 0.0
(True, True)
"""

from repro.core.batch import BatchError, CircuitBreaker
from repro.core.budget import BudgetTracker, QueryBudget
from repro.core.health import (
    HEALTH_DEGRADED,
    HEALTH_FAILED,
    HEALTH_HEALTHY,
    EngineHealth,
)
from repro.errors import (
    PageCorruptionError,
    PageReadError,
    QuarantinedPageError,
    StorageError,
)
from repro.geodesic.deadline import DeadlineExceeded
from repro.storage.faults import (
    FAULT_CORRUPT,
    FAULT_DEAD,
    FAULT_LATENCY,
    FAULT_TRANSIENT,
    FaultEvent,
    FaultInjector,
    FaultStats,
    PageQuarantine,
    QuarantineEntry,
    RetryPolicy,
    kill_random_pages,
)

__all__ = [
    "FAULT_CORRUPT",
    "FAULT_DEAD",
    "FAULT_LATENCY",
    "FAULT_TRANSIENT",
    "HEALTH_DEGRADED",
    "HEALTH_FAILED",
    "HEALTH_HEALTHY",
    "BatchError",
    "BudgetTracker",
    "CircuitBreaker",
    "DeadlineExceeded",
    "EngineHealth",
    "FaultEvent",
    "FaultInjector",
    "FaultStats",
    "PageCorruptionError",
    "PageQuarantine",
    "PageReadError",
    "QuarantineEntry",
    "QuarantinedPageError",
    "QueryBudget",
    "RetryPolicy",
    "StorageError",
    "kill_random_pages",
]
